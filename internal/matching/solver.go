package matching

import (
	"math"

	"mfcp/internal/mat"
)

// Method selects the inner continuous solver.
type Method int

const (
	// MethodMirror is exponentiated-gradient mirror descent on the
	// assignment polytope: x_ij ← x_ij·exp(−η·∇_ij), column-renormalized.
	// It is the default — it respects the simplex geometry, so steps stay
	// feasible and convergence is fast and monotone in practice.
	MethodMirror Method = iota
	// MethodPGD is Algorithm 1 exactly as printed in the paper: a Euclidean
	// gradient step followed by a column-wise softmax re-projection.
	MethodPGD
)

// SolveOptions configures SolveRelaxed.
type SolveOptions struct {
	// Method selects the solver (default MethodMirror).
	Method Method
	// Iters caps gradient iterations (default 300).
	Iters int
	// LR is the step size η (default 0.5 for mirror, 0.3 for PGD).
	LR float64
	// Tol stops early when ‖X_{k+1} − X_k‖∞ < Tol (default 1e-7).
	Tol float64
	// Init optionally seeds the iterate; nil starts from uniform.
	Init *mat.Dense
}

func (o *SolveOptions) fillDefaults() {
	if o.Iters == 0 {
		o.Iters = 300
	}
	if o.LR == 0 {
		if o.Method == MethodPGD {
			o.LR = 0.3
		} else {
			o.LR = 0.5
		}
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
}

// SolveRelaxed minimizes the relaxed objective F over the product of
// column simplices and returns the continuous optimum X*. The result is a
// fresh matrix; the options' Init is not mutated.
func SolveRelaxed(p *Problem, opts SolveOptions) *mat.Dense {
	return SolveRelaxedWS(p, opts, nil)
}

// SolveInfo is the convergence record of one relaxed solve, written into
// the workspace (Workspace.Info) so serving loops can surface
// iterations-to-convergence without timing hooks inside the solver. Plain
// field writes — recording it keeps the solve allocation-free.
type SolveInfo struct {
	// Iters is the number of gradient iterations executed.
	Iters int
	// Converged reports an early stop on Tol (false = ran to the cap).
	Converged bool
	// FinalDelta is the last measured ‖X_{k+1} − X_k‖∞ (0 until the first
	// convergence check at iteration 5).
	FinalDelta float64
}

// SolveRelaxedWS is SolveRelaxed with every scratch buffer — including the
// iterate itself — taken from ws, making the whole call allocation-free
// (TestSolveRelaxedZeroAllocs asserts zero heap objects per call). The
// returned matrix is ws.X: it is valid only until the workspace's next use
// and must be Cloned by callers needing persistence. A nil ws allocates
// fresh buffers and behaves exactly like SolveRelaxed.
func SolveRelaxedWS(p *Problem, opts SolveOptions, ws *Workspace) *mat.Dense {
	opts.fillDefaults()
	if ws == nil {
		// One fresh workspace beats allocating gradient/loads/weights scratch
		// inside every solver iteration (GradXWS allocates per call when it
		// has no workspace to draw from).
		ws = NewWorkspace(p.M(), p.N())
	} else {
		ws.ResetFor(p)
	}
	X, grad, prev := ws.X, ws.Grad, ws.Prev
	col, col2 := ws.Col, ws.Col2
	if opts.Init != nil {
		X.CopyFrom(opts.Init)
		normalizeColumns(X)
	} else {
		X.Fill(1 / float64(p.M()))
	}
	prev.CopyFrom(X)
	ws.Info = SolveInfo{Iters: opts.Iters}
	for it := 0; it < opts.Iters; it++ {
		p.GradXWS(X, grad, ws)
		switch opts.Method {
		case MethodPGD:
			// Algorithm 1: X ← X − η∇F, then column softmax.
			X.AddScaled(-opts.LR, grad)
			for j := 0; j < p.N(); j++ {
				for i := 0; i < p.M(); i++ {
					col[i] = X.At(i, j)
				}
				sm := col.Softmax(1, col2)
				for i := 0; i < p.M(); i++ {
					X.Set(i, j, sm[i])
				}
			}
		default:
			// Exponentiated gradient: multiplicative update + renormalize.
			// The update and the column sums fuse into one row-major pass
			// (each updated value is accumulated into its column as it is
			// produced), and the renormalize runs row-major too when no
			// column degenerated — the common case. Column sums still
			// accumulate over i in increasing order and the divisions use
			// the same operands, so the result is bit-identical to the
			// original three-pass per-column formulation.
			m, n := p.M(), p.N()
			xd, gd := X.Data[:m*n], grad.Data[:m*n]
			negLR := -opts.LR
			// The gradient is fully rewritten at the top of every iteration,
			// so its first row doubles as the column-sum scratch: update row
			// 0 reading gd[j] before overwriting it with the running sum.
			colSum := gd[:n]
			row0 := xd[:n]
			for j, g := range colSum {
				v := row0[j] * math.Exp(negLR*g)
				row0[j] = v
				colSum[j] = v
			}
			for i := 1; i < m; i++ {
				row := xd[i*n : (i+1)*n]
				grow := gd[i*n : (i+1)*n]
				for j, g := range grow {
					v := row[j] * math.Exp(negLR*g)
					row[j] = v
					colSum[j] += v
				}
			}
			clean := true
			for _, sum := range colSum {
				if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
					clean = false
					break
				}
			}
			if clean {
				for i := 0; i < m; i++ {
					row := xd[i*n : (i+1)*n]
					for j, v := range row {
						row[j] = v / colSum[j]
					}
				}
			} else {
				uniform := 1 / float64(m)
				for j, sum := range colSum {
					if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
						// A wildly scaled gradient blew the exponent up; reset
						// the column to uniform rather than propagating NaNs.
						for i := 0; i < m; i++ {
							xd[i*n+j] = uniform
						}
						continue
					}
					for i := 0; i < m; i++ {
						xd[i*n+j] /= sum
					}
				}
			}
		}
		// Convergence check every few iterations (the check itself is
		// O(MN); cheap, but no need for it each step).
		if it%5 == 4 {
			maxDelta := 0.0
			for k := range X.Data {
				if d := math.Abs(X.Data[k] - prev.Data[k]); d > maxDelta {
					maxDelta = d
				}
			}
			ws.Info.FinalDelta = maxDelta
			if maxDelta < opts.Tol {
				ws.Info.Iters = it + 1
				ws.Info.Converged = true
				break
			}
			prev.CopyFrom(X)
		}
	}
	return X
}

// normalizeColumns projects each column onto the simplex by clamping to
// non-negative and dividing by the column sum (uniform if degenerate).
func normalizeColumns(X *mat.Dense) {
	for j := 0; j < X.Cols; j++ {
		sum := 0.0
		for i := 0; i < X.Rows; i++ {
			v := X.At(i, j)
			if v < 0 {
				v = 0
				X.Set(i, j, 0)
			}
			sum += v
		}
		if sum <= 0 {
			for i := 0; i < X.Rows; i++ {
				X.Set(i, j, 1/float64(X.Rows))
			}
			continue
		}
		for i := 0; i < X.Rows; i++ {
			X.Set(i, j, X.At(i, j)/sum)
		}
	}
}

// Round converts a relaxed solution to a discrete assignment by column
// argmax: assign[j] is the cluster receiving task j.
func Round(X *mat.Dense) []int {
	assign := make([]int, X.Cols)
	for j := 0; j < X.Cols; j++ {
		best, bi := math.Inf(-1), 0
		for i := 0; i < X.Rows; i++ {
			if v := X.At(i, j); v > best {
				best, bi = v, i
			}
		}
		assign[j] = bi
	}
	return assign
}

// AssignmentMatrix converts a discrete assignment to its 0/1 matrix.
func AssignmentMatrix(assign []int, m int) *mat.Dense {
	X := mat.NewDense(m, len(assign))
	for j, i := range assign {
		X.Set(i, j, 1)
	}
	return X
}

// DiscreteLoads returns each cluster's speedup-adjusted load under a
// discrete assignment, using the problem's T.
func (p *Problem) DiscreteLoads(assign []int) mat.Vec {
	loads := mat.NewVec(p.M())
	counts := make([]int, p.M())
	for j, i := range assign {
		loads[i] += p.T.At(i, j)
		counts[i]++
	}
	for i := range loads {
		loads[i] *= p.zeta(i, float64(counts[i]))
	}
	return loads
}

// DiscreteCost returns f of a discrete assignment: the max (or sum, for
// LinearSum) of the speedup-adjusted loads.
func (p *Problem) DiscreteCost(assign []int) float64 {
	loads := p.DiscreteLoads(assign)
	if p.Objective == LinearSum {
		return loads.Sum()
	}
	m, _ := loads.Max()
	return m
}

// DiscreteReliability returns the mean reliability of the assigned pairs
// (the paper's reported Reliability metric).
func (p *Problem) DiscreteReliability(assign []int) float64 {
	s := 0.0
	for j, i := range assign {
		s += p.A.At(i, j)
	}
	return s / float64(len(assign))
}

// Repair greedily restores reliability feasibility and then local-searches
// the makespan: single-task moves that strictly improve the cost while
// keeping mean reliability ≥ γ (under the problem's own A — callers pass
// predicted or true values by constructing the problem accordingly).
// It returns a new slice; assign is not mutated.
//
// Candidate scoring is incremental, built on repairState (see
// repairstate.go), which maintains these invariants between moves:
//
//	raw[i]    = Σ_{j: assign[j]=i} T[i][j]     (unscaled cluster load)
//	counts[i] = |{j: assign[j]=i}|
//	scaled[i] = ζ_i(counts[i]) · raw[i]        (speedup-adjusted load)
//	relSum    = Σ_j A[assign[j]][j]
//
// A candidate move or swap touches at most two clusters, so its cost is an
// O(1) load delta plus one O(M) max/sum scan and its reliability an O(1)
// delta — replacing the seed implementation's from-scratch DiscreteCost and
// DiscreteReliability per candidate, and allocating nothing. Accepted moves
// update the state incrementally; TestRepairMatchesReference checks the
// accepted-move sequence against the recompute-everything reference, and
// TestRepairStateStaysInSync checks the invariants over long move
// sequences. Scoring-order and tie-breaking semantics are identical to the
// reference: candidates are enumerated in the same order, compared against
// the same base cost, and accepted under the same strict thresholds.
func Repair(p *Problem, assign []int) []int {
	out, _ := RepairWithInfo(p, assign)
	return out
}

// RepairInfo accounts one Repair call: how far the local search moved the
// assignment and what it bought. Serving telemetry feeds these into the
// repair-delta histograms; CostBefore − CostAfter is the makespan the
// repair recovered on top of the rounded relaxation.
type RepairInfo struct {
	// FeasMoves counts phase-1 reliability-restoring moves.
	FeasMoves int
	// Moves and Swaps count accepted phase-2 improvement steps.
	Moves, Swaps int
	// CostBefore/CostAfter bracket the discrete objective across the call.
	CostBefore, CostAfter float64
	// RelBefore/RelAfter bracket the mean reliability across the call.
	RelBefore, RelAfter float64
}

// RepairWithInfo is Repair plus the move/delta accounting above. Identical
// accepted-move sequence to Repair (it IS Repair; the counters are pure
// observation).
func RepairWithInfo(p *Problem, assign []int) ([]int, RepairInfo) {
	var info RepairInfo
	out := append([]int(nil), assign...)
	n := len(out)
	if n == 0 {
		return out, info
	}
	st := newRepairState(p, out)
	info.CostBefore = st.cost()
	info.RelBefore = st.relSum / float64(n)
	// Phase 1: feasibility. While the mean reliability misses γ, apply the
	// move with the best reliability gain per unit cost increase.
	for iter := 0; iter < 2*n; iter++ {
		if st.feasible() {
			break
		}
		bestJ, bestI, bestScore := -1, -1, 0.0
		baseCost := st.cost()
		for j := 0; j < n; j++ {
			cur := out[j]
			for i := 0; i < p.M(); i++ {
				if i == cur {
					continue
				}
				dRel := p.A.At(i, j) - p.A.At(cur, j)
				if dRel <= 0 {
					continue
				}
				newCost, _ := st.moveDelta(j, i)
				score := dRel / (1 + math.Max(newCost-baseCost, 0))
				if score > bestScore {
					bestScore, bestJ, bestI = score, j, i
				}
			}
		}
		if bestJ < 0 {
			break // no reliability-improving move exists
		}
		st.applyMove(bestJ, bestI)
		info.FeasMoves++
	}
	// Phase 2: makespan local search with feasibility preserved — greedy
	// single-task moves plus pairwise swaps (which escape the local optima
	// single moves get stuck in when two heavy tasks sit on each other's
	// preferred clusters).
	improved := true
	for pass := 0; improved && pass < 3*n; pass++ {
		improved = false
		baseCost := st.cost()
		feasible := st.feasible()
		accept := func(newCost float64, newFeasible bool) bool {
			return newCost < baseCost-1e-12 && (newFeasible || !feasible)
		}
		for j := 0; j < n; j++ {
			cur := out[j]
			for i := 0; i < p.M(); i++ {
				if i == cur {
					continue
				}
				newCost, newRel := st.moveDelta(j, i)
				if accept(newCost, newRel >= p.Gamma) {
					st.applyMove(j, i)
					baseCost = st.cost()
					feasible = st.feasible()
					cur = i
					improved = true
					info.Moves++
				}
			}
		}
		for j1 := 0; j1 < n; j1++ {
			for j2 := j1 + 1; j2 < n; j2++ {
				if out[j1] == out[j2] {
					continue
				}
				newCost, newRel := st.swapDelta(j1, j2)
				if accept(newCost, newRel >= p.Gamma) {
					st.applySwap(j1, j2)
					baseCost = st.cost()
					feasible = st.feasible()
					improved = true
					info.Swaps++
				}
			}
		}
	}
	info.CostAfter = st.cost()
	info.RelAfter = st.relSum / float64(n)
	return out, info
}

// Solve runs the full pipeline: relax → optimize → round → repair. It
// returns the continuous optimum and the final discrete assignment.
func Solve(p *Problem, opts SolveOptions) (X *mat.Dense, assign []int) {
	X = SolveRelaxed(p, opts)
	assign = Repair(p, Round(X))
	return X, assign
}
