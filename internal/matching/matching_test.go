package matching

import (
	"math"
	"testing"
	"testing/quick"

	"mfcp/internal/cluster"
	"mfcp/internal/mat"
	"mfcp/internal/rng"
)

// randomProblem builds a feasible random instance.
func randomProblem(r *rng.Source, m, n int) *Problem {
	T := mat.NewDense(m, n)
	A := mat.NewDense(m, n)
	for k := range T.Data {
		T.Data[k] = r.Uniform(0.2, 3)
		A.Data[k] = r.Uniform(0.7, 0.999)
	}
	p := NewProblem(T, A)
	p.Gamma = 0.8
	return p
}

func TestLoadsSequential(t *testing.T) {
	T := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	A := mat.NewDense(2, 2).Fill(0.9)
	p := NewProblem(T, A)
	X := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	loads := p.Loads(X, nil)
	if !loads.Equal(mat.Vec{1, 4}, 1e-12) {
		t.Fatalf("loads=%v", loads)
	}
	if c := p.TimeCost(X); c != 4 {
		t.Fatalf("TimeCost=%v", c)
	}
}

func TestSmoothCostUpperBoundsTrueCost(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(r, 3, 6)
		X := SolveRelaxed(p, SolveOptions{Iters: 50})
		f := p.TimeCost(X)
		fs := p.SmoothTimeCost(X)
		if fs < f-1e-9 {
			t.Fatalf("smooth cost %v below true %v", fs, f)
		}
		if fs > f+math.Log(3)/p.Beta+1e-9 {
			t.Fatalf("smooth cost %v too far above true %v", fs, f)
		}
	}
}

func TestTheorem1Convergence(t *testing.T) {
	// f̃ → f as β → ∞ (Theorem 1).
	r := rng.New(2)
	p := randomProblem(r, 3, 5)
	X := p.UniformX()
	f := p.TimeCost(X)
	prevGap := math.Inf(1)
	for _, beta := range []float64{1, 10, 100, 1000} {
		p.Beta = beta
		gap := p.SmoothTimeCost(X) - f
		if gap < -1e-12 || gap > prevGap+1e-12 {
			t.Fatalf("gap %v at beta=%v not shrinking (prev %v)", gap, beta, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1e-2 {
		t.Fatalf("gap at beta=1000 still %v", prevGap)
	}
}

func TestGradXMatchesFiniteDiff(t *testing.T) {
	r := rng.New(3)
	cases := []struct {
		name string
		mod  func(p *Problem)
	}{
		{"logbarrier-makespan", func(p *Problem) {}},
		{"hardpenalty", func(p *Problem) { p.Barrier = HardPenalty; p.Gamma = 0.95 }},
		{"linearsum", func(p *Problem) { p.Objective = LinearSum }},
		{"perclustertask", func(p *Problem) { p.Norm = NormPerClusterTask; p.Gamma = 0.25 }},
		{"parallel", func(p *Problem) {
			p.Speedups = []cluster.SpeedupCurve{cluster.DefaultSpeedup(), {Floor: 0.7, Rate: 0.3}, cluster.DefaultSpeedup()}
		}},
	}
	for _, tc := range cases {
		p := randomProblem(r, 3, 4)
		tc.mod(p)
		// An interior point: slightly perturbed uniform.
		X := p.UniformX()
		for k := range X.Data {
			X.Data[k] += r.Uniform(-0.05, 0.05)
		}
		normalizeColumns(X)
		analytic := p.GradX(X, nil)
		const h = 1e-6
		for k := range X.Data {
			orig := X.Data[k]
			X.Data[k] = orig + h
			up := p.F(X)
			X.Data[k] = orig - h
			down := p.F(X)
			X.Data[k] = orig
			fd := (up - down) / (2 * h)
			if math.Abs(fd-analytic.Data[k]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%s: grad[%d] analytic %v, fd %v", tc.name, k, analytic.Data[k], fd)
			}
		}
	}
}

func TestSolveRelaxedStaysOnSimplex(t *testing.T) {
	r := rng.New(4)
	check := func(seed uint16) bool {
		s := r.SplitIndexed("simplex", int(seed%200))
		p := randomProblem(s, 2+s.Intn(3), 3+s.Intn(6))
		for _, method := range []Method{MethodMirror, MethodPGD} {
			X := SolveRelaxed(p, SolveOptions{Method: method, Iters: 60})
			for j := 0; j < p.N(); j++ {
				sum := 0.0
				for i := 0; i < p.M(); i++ {
					v := X.At(i, j)
					if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
						return false
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRelaxedDecreasesF(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(r, 3, 8)
		start := p.F(p.UniformX())
		X := SolveRelaxed(p, SolveOptions{Iters: 200})
		if end := p.F(X); end > start+1e-9 {
			t.Fatalf("solver increased F: %v -> %v", start, end)
		}
	}
}

func TestMirrorRecoversObviousOptimum(t *testing.T) {
	// Cluster 0 is vastly faster for every task and equally reliable: the
	// relaxed solution must put (nearly) all mass away from the slow rows
	// only insofar as makespan balancing demands — with a single task the
	// answer is unambiguous.
	T := mat.FromRows([][]float64{{0.1}, {5}, {5}})
	A := mat.NewDense(3, 1).Fill(0.95)
	p := NewProblem(T, A)
	p.Gamma = 0.8
	X := SolveRelaxed(p, SolveOptions{Iters: 400})
	if X.At(0, 0) < 0.9 {
		t.Fatalf("mass on fast cluster only %v\n%v", X.At(0, 0), X)
	}
}

func TestMakespanBalancing(t *testing.T) {
	// Two identical clusters, two identical heavy tasks: optimal split is
	// one each; the relaxed optimum must not pile both on one cluster.
	T := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	A := mat.NewDense(2, 2).Fill(0.95)
	p := NewProblem(T, A)
	p.Gamma = 0.8
	_, assign := Solve(p, SolveOptions{})
	if assign[0] == assign[1] {
		t.Fatalf("both tasks on cluster %d", assign[0])
	}
}

func TestRoundAndAssignmentMatrix(t *testing.T) {
	X := mat.FromRows([][]float64{{0.7, 0.2}, {0.3, 0.8}})
	assign := Round(X)
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign=%v", assign)
	}
	Xd := AssignmentMatrix(assign, 2)
	if Xd.At(0, 0) != 1 || Xd.At(1, 1) != 1 || Xd.At(1, 0) != 0 {
		t.Fatalf("matrix=%v", Xd)
	}
}

func TestDiscreteCostAndReliability(t *testing.T) {
	T := mat.FromRows([][]float64{{1, 2, 3}, {2, 1, 1}})
	A := mat.FromRows([][]float64{{0.9, 0.8, 0.7}, {0.6, 0.95, 0.9}})
	p := NewProblem(T, A)
	assign := []int{0, 1, 1}
	if c := p.DiscreteCost(assign); c != 2 {
		t.Fatalf("cost=%v", c) // cluster0: 1; cluster1: 1+1=2
	}
	wantRel := (0.9 + 0.95 + 0.9) / 3
	if rel := p.DiscreteReliability(assign); math.Abs(rel-wantRel) > 1e-12 {
		t.Fatalf("rel=%v want %v", rel, wantRel)
	}
}

func TestDiscreteCostWithSpeedup(t *testing.T) {
	T := mat.FromRows([][]float64{{1, 1, 1}})
	A := mat.NewDense(1, 3).Fill(0.9)
	p := NewProblem(T, A)
	p.Speedups = []cluster.SpeedupCurve{cluster.DefaultSpeedup()}
	assign := []int{0, 0, 0}
	want := p.Speedups[0].Zeta(3) * 3
	if c := p.DiscreteCost(assign); math.Abs(c-want) > 1e-12 {
		t.Fatalf("cost=%v want %v", c, want)
	}
}

func TestRepairRestoresFeasibility(t *testing.T) {
	// Cluster 0 fast but unreliable; cluster 1 slow but reliable. Start from
	// the all-fast assignment (infeasible) and check Repair reaches γ.
	T := mat.FromRows([][]float64{{1, 1, 1, 1}, {1.5, 1.5, 1.5, 1.5}})
	A := mat.FromRows([][]float64{{0.6, 0.6, 0.6, 0.6}, {0.99, 0.99, 0.99, 0.99}})
	p := NewProblem(T, A)
	p.Gamma = 0.9
	fixed := Repair(p, []int{0, 0, 0, 0})
	if p.DiscreteReliability(fixed) < p.Gamma {
		t.Fatalf("repair left reliability %v < γ", p.DiscreteReliability(fixed))
	}
}

func TestRepairDoesNotWorsenFeasibleCost(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(r, 3, 7)
		p.Gamma = 0.75
		X := SolveRelaxed(p, SolveOptions{Iters: 100})
		rounded := Round(X)
		repaired := Repair(p, rounded)
		if p.DiscreteReliability(rounded) >= p.Gamma {
			if p.DiscreteCost(repaired) > p.DiscreteCost(rounded)+1e-9 {
				t.Fatalf("repair worsened a feasible assignment: %v -> %v",
					p.DiscreteCost(rounded), p.DiscreteCost(repaired))
			}
		}
	}
}

func TestSolveExactSmall(t *testing.T) {
	// Hand instance: exact optimum computable by hand.
	T := mat.FromRows([][]float64{{2, 2}, {3, 1}})
	A := mat.NewDense(2, 2).Fill(0.9)
	p := NewProblem(T, A)
	p.Gamma = 0.5
	assign, cost, feasible := SolveExact(p)
	if !feasible {
		t.Fatal("trivially feasible instance reported infeasible")
	}
	// options: {0,0}:4 {0,1}:max(2,1)=2 {1,0}:max(3,2)=3 {1,1}:4 → best 2.
	if math.Abs(cost-2) > 1e-12 || assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("exact: assign=%v cost=%v", assign, cost)
	}
}

func TestSolveExactRespectsReliability(t *testing.T) {
	// Fast cluster is unreliable; γ forces the slow one.
	T := mat.FromRows([][]float64{{1}, {5}})
	A := mat.FromRows([][]float64{{0.5}, {0.99}})
	p := NewProblem(T, A)
	p.Gamma = 0.9
	assign, cost, feasible := SolveExact(p)
	if !feasible || assign[0] != 1 || math.Abs(cost-5) > 1e-12 {
		t.Fatalf("assign=%v cost=%v feasible=%v", assign, cost, feasible)
	}
}

func TestSolveExactInfeasibleReported(t *testing.T) {
	T := mat.FromRows([][]float64{{1}, {2}})
	A := mat.FromRows([][]float64{{0.5}, {0.6}})
	p := NewProblem(T, A)
	p.Gamma = 0.99
	assign, cost, feasible := SolveExact(p)
	if feasible {
		t.Fatal("infeasible instance reported feasible")
	}
	// Among infeasible assignments the solver stays cost-minimal.
	if assign[0] != 0 || math.Abs(cost-1) > 1e-12 {
		t.Fatalf("expected cost-minimal fallback, got assign=%v cost=%v", assign, cost)
	}
}

func TestExactBeatsOrMatchesHeuristicEverywhere(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(r, 3, 6)
		exact, exactCost, feasible := SolveExact(p)
		_, heur := Solve(p, SolveOptions{Iters: 200})
		if !feasible {
			continue
		}
		if p.DiscreteReliability(heur) >= p.Gamma && exactCost > p.DiscreteCost(heur)+1e-9 {
			t.Fatalf("exact cost %v worse than heuristic %v (exact=%v heur=%v)",
				exactCost, p.DiscreteCost(heur), exact, heur)
		}
	}
}

func TestHeuristicNearOptimal(t *testing.T) {
	// The pipeline should land within a modest factor of exact on small
	// random instances; it is the workhorse behind all experiments.
	r := rng.New(8)
	worst := 0.0
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(r, 3, 7)
		_, exactCost, feasible := SolveExact(p)
		if !feasible {
			continue
		}
		_, heur := Solve(p, SolveOptions{Iters: 300})
		ratio := p.DiscreteCost(heur) / exactCost
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.35 {
		t.Fatalf("heuristic/exact ratio up to %v", worst)
	}
}

func TestSolveExactParallelObjective(t *testing.T) {
	// With speedups, packing can beat spreading; exact must consider it.
	T := mat.FromRows([][]float64{{1, 1, 1}, {1.1, 1.1, 1.1}})
	A := mat.NewDense(2, 3).Fill(0.95)
	p := NewProblem(T, A)
	p.Gamma = 0.5
	p.Speedups = []cluster.SpeedupCurve{
		{Floor: 0.3, Rate: 3}, // strong parallel speedup
		{Floor: 0.3, Rate: 3},
	}
	assign, cost, feasible := SolveExact(p)
	if !feasible {
		t.Fatal("infeasible")
	}
	// all three on cluster 0: ζ(3)·3 ≈ (0.3+0.7e^{-6})·3 ≈ 0.905 — better
	// than any split (≥ ζ(2)·2 ≈ 0.67·... compute: ζ(2)=0.3+0.7e^-3≈0.335 →
	// 2·0.335=0.67 on the 2-side... so the best is actually 2+1 split).
	// Just assert exact ≤ every brute-force alternative.
	for a0 := 0; a0 < 2; a0++ {
		for a1 := 0; a1 < 2; a1++ {
			for a2 := 0; a2 < 2; a2++ {
				alt := []int{a0, a1, a2}
				if p.DiscreteCost(alt) < cost-1e-12 {
					t.Fatalf("exact %v (%v) beaten by %v (%v)", assign, cost, alt, p.DiscreteCost(alt))
				}
			}
		}
	}
}

func TestBarrierContinuousAtEps(t *testing.T) {
	p := NewProblem(mat.NewDense(1, 1).Fill(1), mat.NewDense(1, 1).Fill(0.9))
	lo := p.barrierValue(barrierEps - 1e-12)
	hi := p.barrierValue(barrierEps + 1e-12)
	if math.Abs(lo-hi) > 1e-6 {
		t.Fatalf("barrier jump at eps: %v vs %v", lo, hi)
	}
}

func TestWithPrediction(t *testing.T) {
	r := rng.New(9)
	p := randomProblem(r, 2, 3)
	T2 := p.T.Clone().Scale(2)
	q := p.WithPrediction(T2, nil)
	if q.T != T2 || q.A != p.A || q.Gamma != p.Gamma {
		t.Fatal("WithPrediction mis-copied")
	}
	// original untouched
	if p.T == T2 {
		t.Fatal("original problem mutated")
	}
}

func TestExactTractable(t *testing.T) {
	if !ExactTractable(3, 12) {
		t.Fatal("3^12 should be tractable")
	}
	if ExactTractable(3, 25) {
		t.Fatal("3^25 should not be tractable")
	}
}

func TestUniformXColumnsSumToOne(t *testing.T) {
	p := NewProblem(mat.NewDense(4, 6).Fill(1), mat.NewDense(4, 6).Fill(0.9))
	X := p.UniformX()
	for j := 0; j < 6; j++ {
		if math.Abs(X.Col(j).Sum()-1) > 1e-12 {
			t.Fatal("uniform column sum != 1")
		}
	}
}

func BenchmarkSolveRelaxedMirror(b *testing.B) {
	p := randomProblem(rng.New(1), 3, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveRelaxed(p, SolveOptions{Iters: 100})
	}
}

func BenchmarkSolveExact3x10(b *testing.B) {
	p := randomProblem(rng.New(1), 3, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveExact(p)
	}
}

func TestRepairAlwaysValidAssignment(t *testing.T) {
	// Property: for any instance and any (possibly terrible) starting
	// assignment, Repair returns a complete, in-range assignment and never
	// increases the cost of a feasible start.
	r := rng.New(201)
	check := func(seed uint16) bool {
		s := r.SplitIndexed("repair", int(seed%300))
		m := 2 + s.Intn(3)
		n := 3 + s.Intn(7)
		p := randomProblem(s, m, n)
		start := make([]int, n)
		for j := range start {
			start[j] = s.Intn(m)
		}
		out := Repair(p, start)
		if len(out) != n {
			return false
		}
		for _, a := range out {
			if a < 0 || a >= m {
				return false
			}
		}
		if p.DiscreteReliability(start) >= p.Gamma &&
			p.DiscreteCost(out) > p.DiscreteCost(start)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundPicksColumnArgmax(t *testing.T) {
	r := rng.New(202)
	check := func(seed uint16) bool {
		s := r.SplitIndexed("round", int(seed%200))
		m := 2 + s.Intn(4)
		n := 1 + s.Intn(6)
		X := mat.NewDense(m, n)
		s.NormVec(X.Data)
		assign := Round(X)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if X.At(i, j) > X.At(assign[j], j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
