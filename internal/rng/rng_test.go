package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("workload")
	// Consuming the parent after Split must not change what an identically
	// derived child would have produced.
	root2 := New(7)
	for i := 0; i < 100; i++ {
		root2.Uint64()
	}
	// root2's state advanced, so its Split differs by construction; what we
	// check is that Split is a pure function of the snapshot at Split time.
	rootA := New(7)
	c2 := rootA.Split("workload")
	for i := 0; i < 256; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-name splits from identical parents diverged at %d", i)
		}
	}
}

func TestSplitNamesDiffer(t *testing.T) {
	root := New(7)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently named splits produced %d/64 identical outputs", same)
	}
}

func TestSplitIndexedDistinct(t *testing.T) {
	root := New(9)
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		s := root.SplitIndexed("rep", i)
		v := s.Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("replicates %d and %d share first output", i, j)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormalAffine(t *testing.T) {
	r := New(17)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-5) > 0.05 {
		t.Fatalf("Normal(5,2) mean %v", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 || math.IsNaN(v) {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if hits < 28500 || hits > 31500 {
		t.Fatalf("Bernoulli(0.3) rate %d/100000", hits)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(31)
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 1}, {2, 3}, {9, 0.5}} {
		n := 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.scale)
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("Gamma(%v,%v) produced %v", tc.shape, tc.scale, v)
			}
			sum += v
		}
		want := tc.shape * tc.scale
		if mean := sum / float64(n); math.Abs(mean-want) > 0.05*want+0.02 {
			t.Fatalf("Gamma(%v,%v) mean %v, want ~%v", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestBetaRange(t *testing.T) {
	r := New(37)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Beta(8, 2)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.8) > 0.01 {
		t.Fatalf("Beta(8,2) mean %v, want ~0.8", mean)
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := New(41)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight element chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("Choice ratio %v, want ~3", ratio)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(43)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(47)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestNormVec(t *testing.T) {
	r := New(53)
	v := r.NormVec(make([]float64, 16))
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("NormVec returned all zeros")
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 57; i++ {
		r.Uint64() // advance to an arbitrary interior state
	}
	st := r.State()
	clone := New(1)
	clone.SetState(st)
	for i := 0; i < 256; i++ {
		if r.Uint64() != clone.Uint64() {
			t.Fatalf("restored stream diverged at step %d", i)
		}
	}
	// Splits are pure functions of the snapshot, so they must agree too.
	a := r.Split("child")
	b := clone.Split("child")
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("splits of restored state diverged at %d", i)
		}
	}
}

func TestSetStateRejectsAllZero(t *testing.T) {
	// xoshiro256** is stuck at zero forever from the all-zero state; SetState
	// must substitute a valid state rather than wedge the stream.
	r := New(7)
	r.SetState([4]uint64{})
	zero := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero == 64 {
		t.Fatal("all-zero state wedged the generator")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}
