// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must regenerate identically from a single seed, across
// machines and Go releases. The standard library's math/rand does not
// guarantee a stable stream across Go versions for all helpers, and its
// global state is hostile to parallel experiment replication. We therefore
// implement our own generator:
//
//   - state initialization via SplitMix64 (Steele et al., "Fast Splittable
//     Pseudorandom Number Generators", OOPSLA 2014), and
//   - generation via xoshiro256** (Blackman & Vigna, 2018),
//
// both of which are tiny, fast, and well studied. A Source can be Split into
// independent child streams by name, so each subsystem (workload generation,
// predictor initialization, failure draws, zeroth-order perturbations, ...)
// owns a stream whose values do not depend on how often sibling streams are
// consumed.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic random stream. It is NOT safe for concurrent use;
// Split off a child per goroutine instead.
type Source struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next SplitMix64 output. It is used
// only to seed xoshiro state, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources built from the same seed
// produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9E3779B97F4A7C15
	}
	return &src
}

// State returns the stream's internal xoshiro256** state, for checkpointing.
// Restoring it with SetState resumes the stream at exactly the same point.
func (r *Source) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. The all-zero
// state is invalid for xoshiro (the generator would emit zeros forever), so
// a corrupt restore falls back to the canonical non-zero seed word rather
// than wedging the stream.
func (r *Source) SetState(st [4]uint64) {
	r.s = st
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child stream identified by name. The child's
// sequence is a pure function of (parent seed material, name); consuming
// values from the parent or from sibling children does not affect it.
func (r *Source) Split(name string) *Source {
	h := fnv.New64a()
	// Hash the current state snapshot and the name. Using the state snapshot
	// (not the live stream) keeps Split referentially transparent with
	// respect to sibling Splits performed on a freshly built Source.
	var buf [8]byte
	for _, w := range r.s {
		putUint64(buf[:], w)
		h.Write(buf[:])
	}
	h.Write([]byte(name))
	return New(h.Sum64())
}

// SplitIndexed derives an independent child stream identified by (name, i).
// It is the parallel-replication workhorse: replicate k's stream is stable no
// matter how many replicates run or in which order.
func (r *Source) SplitIndexed(name string, i int) *Source {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range r.s {
		putUint64(buf[:], w)
		h.Write(buf[:])
	}
	h.Write([]byte(name))
	putUint64(buf[:], uint64(i)+0x9E3779B97F4A7C15)
	h.Write(buf[:])
	return New(h.Sum64())
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		// invariant: draw bounds are sized by callers from non-empty collections.
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// simple rejection keeps the stream easy to reason about and is far from
	// any hot path.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) mod bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, via Fisher–Yates.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate via the polar (Marsaglia) method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// LogNormal returns exp(Normal(mu, sigma)); the conventional multiplicative
// noise model for measured execution times.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		// invariant: rates come from validated workload configs.
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia–Tsang
// squeeze method, with Ahrens-Dieter boosting for shape < 1.
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		// invariant: shape/rate come from validated workload configs.
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a Beta(a, b) variate; used for reliability ground truth.
func (r *Source) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// NormVec fills dst with independent standard normal variates and returns it.
func (r *Source) NormVec(dst []float64) []float64 {
	for i := range dst {
		dst[i] = r.Norm()
	}
	return dst
}

// Choice returns a uniformly random element index weighted by w (w need not
// be normalized). It panics if all weights are non-positive.
func (r *Source) Choice(w []float64) int {
	total := 0.0
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		// invariant: weight vectors are validated at workload construction.
		panic("rng: Choice with no positive weights")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		if v > 0 {
			acc += v
			if target < acc {
				return i
			}
		}
	}
	return len(w) - 1
}
