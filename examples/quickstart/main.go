// Quickstart: build a simulated computing resource exchange platform,
// train MFCP, and match a round of incoming deep-learning tasks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mfcp"
)

func main() {
	// 1. Build the environment: a heterogeneous 3-cluster fleet (setting A),
	//    a pool of synthetic deep-learning tasks, and noisy profiling
	//    measurements. Everything is deterministic in the seed.
	scenario, err := mfcp.NewScenario(mfcp.ScenarioConfig{
		Setting:  mfcp.SettingA,
		PoolSize: 120,
		Seed:     2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet:")
	for _, p := range scenario.Fleet {
		fmt.Printf(" %s", p.Name)
	}
	fmt.Printf("  |  %d tasks in pool, feature dim %d\n\n", scenario.PoolLen(), scenario.Features.Cols)

	// 2. Split profiling tasks from live traffic and train MFCP with
	//    analytical differentiation (the convex sequential setting).
	train, test := scenario.Split(0.75)
	trainer := mfcp.Train(scenario, train, mfcp.TrainerConfig{
		Kind:           mfcp.KindAD,
		PretrainEpochs: 200, // MSE warm start == the two-stage baseline
		Epochs:         120, // end-to-end regret descent through the matcher
	})
	fmt.Printf("trained %s: best validation regret %.4f\n\n", trainer.Name(), trainer.ValRegret)

	// 3. A round of five tasks arrives. Predict per-cluster execution time
	//    and reliability, then solve the matching: minimize the makespan
	//    subject to the mean-reliability constraint γ.
	round := scenario.SampleRound(test, 5, scenario.Stream("quickstart"))
	That, Ahat := trainer.Predict(round)

	var mc mfcp.MatchConfig // zero value = paper defaults (γ=0.8, β=10, λ=0.05)
	assignment := mfcp.Match(mc, That, Ahat)

	for k, j := range round {
		task := scenario.Pool[j]
		fmt.Printf("task %-22s (%-11s) -> %s  (predicted %.2f, true %.2f normalized time)\n",
			task.Name, task.Family, scenario.Fleet[assignment[k]].Name,
			That.At(assignment[k], k), func() float64 { T, _ := scenario.TrueMatrices(round); return T.At(assignment[k], k) }())
	}

	// 4. Score the decision against the hidden ground truth: regret
	//    compares our makespan to what matching with perfect predictions
	//    would have achieved (equation 6 of the paper).
	ev := mfcp.Evaluate(scenario, mc, round, assignment)
	fmt.Printf("\nregret=%.4f  reliability=%.3f (γ=%.2f, feasible=%v)  utilization=%.3f\n",
		ev.Regret, ev.Reliability, 0.8, ev.Feasible, ev.Utilization)
	fmt.Printf("makespan %.3f vs oracle %.3f (normalized units; 1.0 ≈ %.0f s)\n",
		ev.Makespan, ev.OracleMakespan, scenario.TimeScale)
}
