// Heterogeneous-clusters example: the paper's Fig. 2 phenomenon, live.
//
// Different clusters prefer different task families (mature conv kernels
// vs fused attention vs embedding bandwidth), so the performance ordering
// of clusters REVERSES across tasks. An MSE-trained predictor spreads its
// error budget evenly and flips some of those orderings; MFCP spends
// accuracy where the matching decision depends on it.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"

	"mfcp"
	"mfcp/internal/experiments"
)

func main() {
	scenario, err := mfcp.NewScenario(mfcp.ScenarioConfig{Setting: mfcp.SettingA, PoolSize: 120, Seed: 9})
	if err != nil {
		panic(err)
	}
	train, test := scenario.Split(0.75)

	// Part 1 — show the preference structure in the ground truth: for each
	// task family, which cluster is fastest?
	fmt.Println("ground-truth fastest cluster by task (first 10 test tasks):")
	for _, j := range test[:10] {
		task := scenario.Pool[j]
		T, _ := scenario.TrueMatrices([]int{j})
		best, bi := T.At(0, 0), 0
		for i := 1; i < scenario.M(); i++ {
			if T.At(i, 0) < best {
				best, bi = T.At(i, 0), i
			}
		}
		fmt.Printf("  %-24s %-11s -> %s\n", task.Name, task.Family, scenario.Fleet[bi].Name)
	}
	fmt.Println()

	// Part 2 — ordering errors: how often does each method's prediction
	// flip the true pairwise cluster ordering for a task? Note the regret
	// loss does NOT simply minimize this count: it reweights errors toward
	// the orderings the matching actually depends on, so MFCP may carry
	// MORE total flips than TSM while still making better decisions (the
	// regret comparison below is the metric that matters).
	shared := mfcp.PretrainPredictors(scenario, train, []int{16}, 200)
	tsm := mfcp.NewTSMFrom(scenario, shared)
	trainer := mfcp.Train(scenario, train, mfcp.TrainerConfig{
		Kind: mfcp.KindFG, Warm: shared, Epochs: 120,
	})
	orderingErrors := func(m mfcp.Method) (flips, total int) {
		That, _ := m.Predict(test)
		trueT, _ := scenario.TrueMatrices(test)
		for j := range test {
			for a := 0; a < scenario.M(); a++ {
				for b := a + 1; b < scenario.M(); b++ {
					predDiff := That.At(a, j) - That.At(b, j)
					trueDiff := trueT.At(a, j) - trueT.At(b, j)
					if predDiff*trueDiff < 0 {
						flips++
					}
					total++
				}
			}
		}
		return flips, total
	}
	for _, m := range []mfcp.Method{tsm, trainer} {
		flips, total := orderingErrors(m)
		fmt.Printf("%-8s pairwise cluster-ordering flips: %d/%d (%.1f%%)\n",
			m.Name(), flips, total, 100*float64(flips)/float64(total))
	}
	fmt.Println()

	// Part 3 — the decisions themselves: evaluate both methods on the same
	// test rounds through the identical matcher.
	var mc mfcp.MatchConfig
	mc.FillDefaults()
	for _, m := range []mfcp.Method{tsm, trainer} {
		agg := experiments.EvaluateMethod(scenario, m, test, mc, 30, 5, scenario.Stream("hetero-eval"))
		fmt.Printf("%-8s regret=%.4f  reliability=%.3f  utilization=%.3f\n",
			m.Name(), agg.Regret, agg.Reliability, agg.Utilization)
	}
}
