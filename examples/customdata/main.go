// Custom-data example: using the library on YOUR OWN measurements instead
// of the built-in simulator.
//
// An operator with real profiling data prepares two CSV files (the same
// layout cmd/datagen emits):
//
//	features.csv     task,f0,f1,...          one row per task
//	performance.csv  cluster,cluster_name,task,...,meas_time_norm,...,meas_reliability
//
// loads them as a Scenario, trains predictors, and matches incoming
// rounds. Here we fabricate the CSVs with cmd/datagen's writer equivalent
// (in-memory), then run the full external-data flow.
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"mfcp"
)

func main() {
	// Stand-in for "your measurements": export a simulated scenario to CSV.
	// With real data you would skip this step and write the files yourself.
	dir, err := os.MkdirTemp("", "mfcp-customdata")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	writeDemoCSVs(dir)

	// 1. Load the dataset. No simulator stands behind it: the measured
	//    matrices are all the platform knows.
	scenario, err := mfcp.LoadScenarioCSV(dir, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded external dataset: %d clusters × %d tasks, time unit ≈ %.0fs\n",
		scenario.M(), scenario.PoolLen(), scenario.TimeScale)

	// 2. Train exactly as with simulated scenarios.
	train, test := scenario.Split(0.75)
	shared := mfcp.PretrainPredictors(scenario, train, []int{16}, 200)
	trainer := mfcp.Train(scenario, train, mfcp.TrainerConfig{
		Kind: mfcp.KindFG, Warm: shared, Epochs: 120,
	})

	// 3. Match a round and evaluate against the best available knowledge
	//    (for external data, the measurements themselves).
	round := scenario.SampleRound(test, 5, scenario.Stream("demo"))
	That, Ahat := trainer.Predict(round)
	var mc mfcp.MatchConfig
	assign := mfcp.Match(mc, That, Ahat)
	ev := mfcp.Evaluate(scenario, mc, round, assign)
	fmt.Printf("matched %d tasks: regret=%.4f reliability=%.3f utilization=%.3f\n",
		len(round), ev.Regret, ev.Reliability, ev.Utilization)
	for k, j := range round {
		fmt.Printf("  task %3d -> cluster %d\n", j, assign[k])
	}
}

// writeDemoCSVs exports a small simulated scenario in datagen's layout.
func writeDemoCSVs(dir string) {
	src, err := mfcp.NewScenario(mfcp.ScenarioConfig{PoolSize: 80, FeatureDim: 12, Seed: 7})
	if err != nil {
		panic(err)
	}
	var f, p []byte
	f = append(f, []byte("task")...)
	for d := 0; d < src.Features.Cols; d++ {
		f = append(f, []byte(fmt.Sprintf(",f%d", d))...)
	}
	f = append(f, '\n')
	for j := 0; j < src.Features.Rows; j++ {
		f = append(f, []byte(fmt.Sprintf("%d", j))...)
		for _, v := range src.Features.Row(j) {
			f = append(f, []byte(fmt.Sprintf(",%.6f", v))...)
		}
		f = append(f, '\n')
	}
	p = append(p, []byte("cluster,cluster_name,task,true_time_norm,meas_time_norm,true_reliability,meas_reliability\n")...)
	for i, prof := range src.Fleet {
		for j := 0; j < src.PoolLen(); j++ {
			p = append(p, []byte(fmt.Sprintf("%d,%s,%d,%.6f,%.6f,%.4f,%.4f\n",
				i, prof.Name, j, src.TrueT.At(i, j), src.MeasT.At(i, j), src.TrueA.At(i, j), src.MeasA.At(i, j)))...)
		}
	}
	must(os.WriteFile(filepath.Join(dir, "features.csv"), f, 0o644))
	must(os.WriteFile(filepath.Join(dir, "performance.csv"), p, 0o644))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
