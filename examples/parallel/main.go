// Parallel-execution example (§3.4 of the paper): clusters run co-located
// tasks with a speedup curve ζ decaying from 1 toward 0.6, which makes the
// matching objective non-convex — analytical differentiation no longer
// applies and MFCP falls back to zeroth-order forward gradients.
//
//	go run ./examples/parallel
package main

import (
	"fmt"

	"mfcp"
	"mfcp/internal/experiments"
	"mfcp/internal/platform"
)

func main() {
	scenario, err := mfcp.NewScenario(mfcp.ScenarioConfig{Setting: mfcp.SettingA, PoolSize: 120, Seed: 1})
	if err != nil {
		panic(err)
	}

	// Show the fleet's speedup curves: ζ(k) multiplies the summed load of a
	// cluster running k tasks.
	fmt.Println("speedup curves ζ(k):")
	fmt.Printf("  %-14s", "cluster")
	for k := 1; k <= 8; k++ {
		fmt.Printf("  k=%d  ", k)
	}
	fmt.Println()
	for _, p := range scenario.Fleet {
		fmt.Printf("  %-14s", p.Name)
		for k := 1; k <= 8; k++ {
			fmt.Printf("  %.3f", p.Speedup.Zeta(float64(k)))
		}
		fmt.Println()
	}
	fmt.Println()

	// Train and evaluate in the non-convex setting. MFCP-AD would refuse;
	// MFCP-FG estimates gradients by perturbing predictions and re-solving
	// the matching (Algorithm 2).
	train, test := scenario.Split(0.75)
	var mc mfcp.MatchConfig
	mc.FillDefaults()
	for _, p := range scenario.Fleet {
		mc.Speedups = append(mc.Speedups, p.Speedup)
	}

	shared := mfcp.PretrainPredictors(scenario, train, []int{16}, 200)
	tsm := mfcp.NewTSMFrom(scenario, shared)
	fg := mfcp.Train(scenario, train, mfcp.TrainerConfig{
		Kind: mfcp.KindFG, Warm: shared, RoundSize: 10, Match: mc,
	})
	fmt.Println("non-convex matching (N=10 tasks per round):")
	for _, m := range []mfcp.Method{tsm, fg} {
		agg := experiments.EvaluateMethod(scenario, m, test, mc, 25, 10, scenario.Stream("par-eval"))
		fmt.Printf("  %-8s regret=%.4f  reliability=%.3f  utilization=%.3f\n",
			m.Name(), agg.Regret, agg.Reliability, agg.Utilization)
	}
	fmt.Println()

	// End-to-end: simulate the platform under the parallel scheduler and
	// compare wall-clock makespans of the two disciplines.
	rep, err := mfcp.RunPlatform(platform.Config{
		Scenario:  mfcp.ScenarioConfig{Setting: mfcp.SettingA, PoolSize: 120, Seed: 1},
		Method:    platform.MethodMFCPFG,
		Rounds:    20,
		RoundSize: 10,
		Parallel:  true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("platform (parallel scheduler, %s): mean utilization %.3f, success rate %.1f%%, %.1f cluster-hours simulated\n",
		rep.Method, rep.MeanUtilization, 100*rep.MeanSuccessRate, rep.TotalBusySeconds/3600)
}
