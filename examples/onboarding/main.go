// Onboarding example: a new third-party cluster joins the exchange
// platform. How many profiling runs does the platform need before its
// predictions of the newcomer are good enough to matter for matching?
// And once live, how much does in-the-loop refitting from realized
// executions improve the rounds?
//
//	go run ./examples/onboarding
package main

import (
	"fmt"

	"mfcp"
)

func main() {
	scenario, err := mfcp.NewScenario(mfcp.ScenarioConfig{Setting: mfcp.SettingA, PoolSize: 160, Seed: 31})
	if err != nil {
		panic(err)
	}

	// Part 1 — profiling-budget curve for a newcomer. Pick a cluster that
	// is NOT in setting A's fleet: the spot-instance pool.
	var newcomer *mfcp.ClusterProfile
	for _, p := range mfcp.ClusterInventory() {
		if p.Name == "spot-pool" {
			newcomer = p
		}
	}
	points, err := mfcp.OnboardingStudy(scenario, newcomer, []int{8, 16, 32, 64, 120})
	if err != nil {
		panic(err)
	}
	fmt.Printf("onboarding %q onto the platform:\n", newcomer.Name)
	fmt.Printf("  %-9s  %-10s  %-8s  %s\n", "profiled", "time RMSE", "rel MAE", "ordering accuracy vs fleet")
	for _, p := range points {
		fmt.Printf("  %-9d  %-10.4f  %-8.4f  %.1f%%\n", p.Samples, p.TimeRMSE, p.RelMAE, 100*p.OrderingAccuracy)
	}
	fmt.Println("\n(ordering accuracy = how often the platform correctly predicts whether")
	fmt.Println(" the newcomer beats the incumbent fleet's best cluster for a task.")
	fmt.Println(" Note that RMSE and ordering accuracy need not improve together —")
	fmt.Println(" exactly the MSE/decision misalignment the paper's Fig. 2 illustrates")
	fmt.Println(" and the reason MFCP trains through the matching instead.)")

	// Part 2 — live operation with periodic refitting from realized
	// executions (partial feedback: only assigned pairs are observed).
	fmt.Println("\nlive platform with in-the-loop refitting (TSM predictors):")
	rep, err := mfcp.RunPlatformOnline(mfcp.OnlineConfig{
		Config: mfcp.PlatformConfig{
			Scenario:       mfcp.ScenarioConfig{Setting: mfcp.SettingA, PoolSize: 160, Seed: 31},
			Method:         "tsm",
			Rounds:         40,
			RoundSize:      5,
			PretrainEpochs: 120, // deliberately under-trained: live data must help
		},
		RefitEvery:  10,
		RefitEpochs: 60,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d rounds, %d refits; regret per 10-round window:\n ", len(rep.Rounds), rep.Refits)
	for _, w := range rep.WindowRegret {
		fmt.Printf(" %.3f", w)
	}
	fmt.Printf("\n  overall: regret %.3f, utilization %.3f, success rate %.1f%%\n",
		rep.MeanRegret, rep.MeanUtilization, 100*rep.MeanSuccessRate)
}
