// Scaling example (the paper's Fig. 5 in miniature): how regret and
// cluster utilization evolve as the number of tasks per allocation round
// grows, for the two-stage baseline versus MFCP.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"mfcp"
	"mfcp/internal/experiments"
)

func main() {
	scenario, err := mfcp.NewScenario(mfcp.ScenarioConfig{Setting: mfcp.SettingA, PoolSize: 160, Seed: 3})
	if err != nil {
		panic(err)
	}
	train, test := scenario.Split(0.75)
	var mc mfcp.MatchConfig
	mc.FillDefaults()

	// TSM and MFCP share the identical MSE-pretrained predictors, so the
	// comparison isolates the end-to-end regret phase.
	shared := mfcp.PretrainPredictors(scenario, train, []int{16}, 200)
	tsm := mfcp.NewTSMFrom(scenario, shared)
	sizes := []int{5, 10, 15, 20}

	fmt.Printf("%-4s  %-28s  %-28s\n", "N", "TSM (regret / utilization)", "MFCP-FG (regret / utilization)")
	for _, n := range sizes {
		// MFCP is retrained per round size: the regret loss is specific to
		// the round structure it will be deployed on.
		fg := mfcp.Train(scenario, train, mfcp.TrainerConfig{
			Kind: mfcp.KindFG, Warm: shared, Epochs: 120, RoundSize: n, Match: mc,
		})
		aggT := experiments.EvaluateMethod(scenario, tsm, test, mc, 20, n, scenario.Stream("scale-eval"))
		aggF := experiments.EvaluateMethod(scenario, fg, test, mc, 20, n, scenario.Stream("scale-eval"))
		fmt.Printf("%-4d  %7.4f / %.3f             %7.4f / %.3f\n",
			n, aggT.Regret, aggT.Utilization, aggF.Regret, aggF.Utilization)
	}
	fmt.Println("\nexpected shape: regret grows roughly linearly with N for both methods")
	fmt.Println("(more tasks, more potential misallocation), utilization rises with N")
	fmt.Println("(finer-grained packing), and MFCP stays at or below TSM throughout.")
}
