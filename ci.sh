#!/bin/sh
# CI gate: static checks plus the full test suite under the race detector.
# The pooled solver workspaces (internal/parallel.Arena, internal/diffopt's
# per-worker shadows) are shared across goroutines, so -race must stay in
# the gate. Equivalent to `make ci`.
set -eux

go vet ./...
go build ./...
# Serving-engine race gate first: the snapshot/ring/shard machinery is the
# likeliest source of new races, so fail fast on it before the full sweep.
go test -race ./internal/platform ./internal/parallel
go test -race ./...
