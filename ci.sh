#!/bin/sh
# CI gate: static checks plus the full test suite under the race detector.
# The pooled solver workspaces (internal/parallel.Arena, internal/diffopt's
# per-worker shadows) are shared across goroutines, so -race must stay in
# the gate. Equivalent to `make ci`.
set -eux

# Static gates first: formatting drift and the panic/error-taxonomy contract
# (DESIGN.md §7) fail fast before any compilation.
UNFORMATTED=$(gofmt -l $(git ls-files '*.go'))
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt needed on:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi
sh scripts/panic_lint.sh

go vet ./...
go build ./...
# Serving-engine race gate first: the snapshot/ring/shard machinery plus
# the pipelined sparse round (screener goroutine overlapped with the cell
# solvers, double-buffered screen slots), the HTTP front-end's
# handler/batcher handoff, and the ensemble's background-refit-vs-serving
# path (risk-shifted predictions racing snapshot publication) are the
# likeliest sources of new races, so fail fast on them before the full
# sweep.
go test -race -run 'Pipelined|SparseEngine|WorkerCountInvariance|Screen|EnsembleRisk' ./internal/platform ./internal/matching ./internal/server
go test -race ./internal/platform ./internal/parallel ./internal/server
go test -race ./...

# Allocation pin (no -race: the detector instruments allocations): the
# steady-state parallel screen must stay allocation-free.
go test -run 'TestScreenWorkspaceZeroAllocs' ./internal/matching

# Backend conformance across every registered predictor family (the suite
# iterates core.BackendNames()): shapes, the zero-alloc PredictInto pin,
# snapshot independence, codec round-trip + corruption -> ErrCorruptCheckpoint,
# refit determinism. DESIGN.md §11.
go test -run 'TestBackendConformance' ./internal/core

# Scale-path smoke test: one production-dimension round (64 clusters ×
# 2000 tasks) through screen → cell solve → reconcile → repair; fails on
# any structural violation (uncovered task, infeasible reconcile,
# workspace screen diverging from the builder screen, or a steady-state
# screen allocation).
go run ./cmd/mfcpbench -scale smoke

# Telemetry endpoint smoke test: run an online simulation with a live
# /metrics endpoint, then assert the key series families are served.
BIN=$(mktemp -d)/platformsim
go build -o "$BIN" ./cmd/platformsim
ADDR=127.0.0.1:19309
"$BIN" -method tsm -online -rounds 60 -pool 48 -n 4 -refit-every 5 \
	-metrics-addr "$ADDR" -hold >/dev/null 2>&1 &
SIM_PID=$!
trap 'kill "$SIM_PID" 2>/dev/null || true' EXIT
# Poll until at least one refit has been published (the run is live).
for i in $(seq 1 120); do
	if curl -sf "http://$ADDR/metrics" 2>/dev/null | grep -q '^mfcp_refits_total [1-9]'; then
		break
	fi
	sleep 0.5
done
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^mfcp_refits_total [1-9]'
for series in \
	mfcp_ring_dropped_total \
	mfcp_refit_seconds_count \
	mfcp_snapshot_version \
	mfcp_phase_sample_seconds_count \
	mfcp_phase_predict_seconds_count \
	mfcp_phase_solve_seconds_count \
	mfcp_embed_cache_hits_total \
	mfcp_embed_cache_misses_total \
	mfcp_rolling_regret; do
	echo "$METRICS" | grep -q "^$series"
done
# Labeled families: the route breakdown and the per-backend attribution
# (rounds and published refits labeled by predictor family, DESIGN.md §11)
# must be served with label sets, and the whole exposition must survive
# the format lint (DESIGN.md §6).
echo "$METRICS" | grep -q '^mfcp_rounds_by_route_total{route="dense"} [1-9]'
echo "$METRICS" | grep -q '^mfcp_route_round_seconds_count{route="dense"} [1-9]'
echo "$METRICS" | grep -q '^mfcp_backend_rounds_total{backend="mlp"} [1-9]'
echo "$METRICS" | grep -q '^mfcp_backend_refits_total{backend="mlp"} [1-9]'
echo "$METRICS" | sh scripts/promtext_lint.sh
kill "$SIM_PID" 2>/dev/null || true
trap - EXIT
echo "telemetry smoke test passed"

# Lifecycle smoke test: SIGINT an online run mid-flight, require exit 130
# plus an on-cancel checkpoint, and resume from it (reuses the binary).
sh scripts/checkpoint_smoke.sh "$BIN"

# HTTP serving smoke test: boot mfcpserve, serve a tenant batch through a
# real listener, assert in-range assignments and nonzero request/batch
# counters on /metrics, then SIGTERM -> drain -> checkpoint -> exit 130.
sh scripts/serve_smoke.sh

# Risk-aware ensemble serving under the race detector: the same end-to-end
# drive against a race-built binary on -backend ensemble -risk 0.5, so
# lower-confidence-bound serving racing background refits is exercised
# through the real process, not just httptest (DESIGN.md §11).
RACEBIN=$(mktemp -d)/mfcpserve
go build -race -o "$RACEBIN" ./cmd/mfcpserve
SERVE_BACKEND=ensemble SERVE_RISK=0.5 SERVE_ASYNC=1 sh scripts/serve_smoke.sh "$RACEBIN"

# Serving-benchmark smoke: a short per-request-vs-batched pass that fails
# unless the micro-batcher actually coalesced concurrent tenants.
go run ./cmd/mfcpbench -serve smoke
