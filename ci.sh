#!/bin/sh
# CI gate: static checks plus the full test suite under the race detector.
# The pooled solver workspaces (internal/parallel.Arena, internal/diffopt's
# per-worker shadows) are shared across goroutines, so -race must stay in
# the gate. Equivalent to `make ci`.
set -eux

go vet ./...
go build ./...
go test -race ./...
