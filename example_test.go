package mfcp_test

import (
	"fmt"

	"mfcp"
)

// ExampleMatch assigns three tasks to two clusters: cluster 0 is fast but
// the makespan objective forces spreading, and the reliability constraint
// is satisfiable either way.
func ExampleMatch() {
	T := &mfcp.Matrix{Rows: 2, Cols: 3, Data: []float64{
		1.0, 1.0, 1.0, // cluster 0: fast for every task
		2.0, 2.0, 2.0, // cluster 1: uniformly slower
	}}
	A := &mfcp.Matrix{Rows: 2, Cols: 3, Data: []float64{
		0.95, 0.95, 0.95,
		0.90, 0.90, 0.90,
	}}
	var mc mfcp.MatchConfig // paper defaults: γ=0.8, β=10, λ=0.05
	assign := mfcp.Match(mc, T, A)

	// Balancing the makespan, two tasks go to the fast cluster and one to
	// the slow one (loads 2.0 vs 2.0) rather than all three to cluster 0
	// (load 3.0).
	counts := make([]int, 2)
	for _, cl := range assign {
		counts[cl]++
	}
	fmt.Println("fast cluster tasks:", counts[0])
	fmt.Println("slow cluster tasks:", counts[1])
	// Output:
	// fast cluster tasks: 2
	// slow cluster tasks: 1
}

// ExampleExactMatch solves a small instance to optimality: the unreliable
// fast cluster is ruled out by the reliability threshold.
func ExampleExactMatch() {
	T := &mfcp.Matrix{Rows: 2, Cols: 1, Data: []float64{
		1.0, // cluster 0: fast...
		5.0, // cluster 1: slow...
	}}
	A := &mfcp.Matrix{Rows: 2, Cols: 1, Data: []float64{
		0.50, // ...but a coin flip
		0.99, // ...but dependable
	}}
	mc := mfcp.MatchConfig{Gamma: 0.9}
	assign, cost, feasible := mfcp.ExactMatch(mc, T, A)
	fmt.Printf("assign=%v cost=%.1f feasible=%v\n", assign, cost, feasible)
	// Output:
	// assign=[1] cost=5.0 feasible=true
}

// ExampleNewScenario shows the simulated-environment entry point.
func ExampleNewScenario() {
	s, err := mfcp.NewScenario(mfcp.ScenarioConfig{
		Setting:  mfcp.SettingA,
		PoolSize: 24,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", s.M())
	fmt.Println("tasks:", s.PoolLen())
	// Output:
	// clusters: 3
	// tasks: 24
}
