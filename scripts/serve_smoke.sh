#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the multi-tenant HTTP serving
# daemon (cmd/mfcpserve), exercising the surface the Go tests reach only
# through httptest: a real listener, real curl clients, the telemetry
# mount, and the SIGTERM drain.
#
#  1. Boot mfcpserve on a fixed port with a small scenario + checkpoint.
#  2. POST a tenant batch; require one in-range assignment per task.
#  3. Require a validation error to answer 400 without disturbing serving.
#  4. Require nonzero request/ok/batch counters on /metrics.
#  5. SIGTERM; require a clean drain, exit 130, and the on-drain checkpoint.
#
# Usage: scripts/serve_smoke.sh [path-to-mfcpserve]
# (builds the binary when not given). Run from the repository root.
#
# SERVE_BACKEND / SERVE_RISK select a predictor backend family and a
# RiskAversion κ (ci.sh drives the ensemble+risk pass with a race-built
# binary); unset they exercise the default MLP path. SERVE_ASYNC=1 turns
# on background refits, so the refit path races live serving.
set -eu

BIN=${1:-}
if [ -z "$BIN" ]; then
	BIN=$(mktemp -d)/mfcpserve
	go build -o "$BIN" ./cmd/mfcpserve
fi
BACKEND=${SERVE_BACKEND:-}
RISK=${SERVE_RISK:-0}
ASYNC=
[ "${SERVE_ASYNC:-0}" = "1" ] && ASYNC=-async-refit

DIR=$(mktemp -d)
CK=$DIR/serve.ckpt
LOG=$DIR/serve.log
ADDR=127.0.0.1:19311
PID=
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

fail() {
	echo "serve-smoke: $1" >&2
	[ -f "$LOG" ] && cat "$LOG" >&2
	exit 1
}

# shellcheck disable=SC2086  # $ASYNC is deliberately word-split (flag or empty)
"$BIN" -addr "$ADDR" -method tsm -pool 48 -n 4 \
	-backend "$BACKEND" -risk "$RISK" $ASYNC \
	-pretrain-epochs 30 -regret-epochs 4 -refit-every 3 \
	-window 2ms -max-batch 16 -checkpoint "$CK" >"$LOG" 2>&1 &
PID=$!

# Predictors train before the listener comes up; poll health.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "server never became healthy"
	kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
	sleep 0.2
done

# One tenant batch: three tasks in, three in-range assignments out.
RESP=$(curl -sf -X POST "http://$ADDR/v1/match" \
	-d '{"tenant":"smoke","tasks":[1,2,3]}') || fail "match request failed"
echo "$RESP" | grep -q '"assignments":\[' || fail "no assignments in: $RESP"
for task in 1 2 3; do
	echo "$RESP" | grep -q "\"task\":$task," || fail "task $task unanswered in: $RESP"
done
echo "$RESP" | grep -q '"cluster":-' && fail "out-of-range cluster in: $RESP"

# A malformed request is the tenant's problem (400), never the round's.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
	"http://$ADDR/v1/match" -d '{"tenant":"smoke","tasks":[]}')
[ "$CODE" = "400" ] || fail "empty batch answered $CODE, want 400"

# Cross a refit boundary (-refit-every 3): three more batches, so the
# predictor refit path runs live under the serving process.
for i in 4 5 6; do
	curl -sf -X POST "http://$ADDR/v1/match" \
		-d "{\"tenant\":\"smoke\",\"tasks\":[$i]}" >/dev/null ||
		fail "refit-window batch $i failed"
done

# Await the published refit before scraping — with -async-refit it lands
# in the background, decoupled from the POST that crossed the boundary.
i=0
until curl -sf "http://$ADDR/metrics" 2>/dev/null |
	grep -q "^mfcp_backend_refits_total{backend=\"${BACKEND:-mlp}\"} [1-9]"; do
	i=$((i + 1))
	[ "$i" -gt 150 ] && fail "refit never published"
	sleep 0.2
done

# Telemetry: the served request must show up in the counters, including the
# per-tenant labeled families, and the exposition must pass the format lint.
METRICS=$(curl -sf "http://$ADDR/metrics") || fail "metrics endpoint down"
for series in \
	'mfcp_http_requests_total [1-9]' \
	'mfcp_http_ok_total [1-9]' \
	'mfcp_batches_total [1-9]' \
	'mfcp_http_responses_total{class="2xx"} [1-9]' \
	'mfcp_tenant_requests_total{tenant="smoke"} [1-9]' \
	'mfcp_tenant_tasks_total{tenant="smoke"} [1-9]' \
	'mfcp_tenant_request_seconds_count{tenant="smoke"} [1-9]'; do
	echo "$METRICS" | grep -q "^$series" || fail "missing nonzero series: $series"
done
echo "$METRICS" | sh scripts/promtext_lint.sh || fail "exposition failed the format lint"

# Backend attribution: served rounds and the published refit must land on
# the per-backend labeled series, and /v1/stats must name the family.
WANT_BACKEND=${BACKEND:-mlp}
echo "$METRICS" | grep -q "^mfcp_backend_rounds_total{backend=\"$WANT_BACKEND\"} [1-9]" ||
	fail "missing nonzero mfcp_backend_rounds_total{backend=\"$WANT_BACKEND\"}"
echo "$METRICS" | grep -q "^mfcp_backend_refits_total{backend=\"$WANT_BACKEND\"} [1-9]" ||
	fail "missing nonzero mfcp_backend_refits_total{backend=\"$WANT_BACKEND\"}"
STATS=$(curl -sf "http://$ADDR/v1/stats") || fail "stats endpoint down"
echo "$STATS" | grep -q "\"backend\":\"$WANT_BACKEND\"" ||
	fail "stats does not name backend $WANT_BACKEND: $STATS"

# Request tracing: the served request must be findable at /debug/traces
# with engine phase timings attached.
TRACES=$(curl -sf "http://$ADDR/debug/traces") || fail "trace endpoint down"
echo "$TRACES" | grep -q '"tenant":"smoke"' || fail "smoke request not traced: $TRACES"
echo "$TRACES" | grep -q '"solve_ns":[1-9]' || fail "trace has no solve timing: $TRACES"

# SIGTERM: drain, checkpoint, exit 130.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" = "130" ] || fail "drained server exited $STATUS, want 130"
test -s "$CK" || fail "drain left no checkpoint at $CK"
grep -q 'drained cleanly' "$LOG" || fail "missing drain banner"
PID=

echo "serve-smoke: ok (batch served, metrics live, SIGTERM -> drain -> 130)"
