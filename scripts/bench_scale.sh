#!/bin/sh
# Production-dimension matching sweep: runs every scale point (64x2000,
# 256x20000, 1000x100000) plus the 1/2/4/8-worker sweep and records the
# latency + rounds/sec curve into BENCH_scale.json at the repo root.
# Equivalent to `make bench-scale`.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mfcpbench -scale all -scale-json BENCH_scale.json
