#!/bin/sh
# Production-dimension matching sweep: runs every scale point (64x2000,
# 256x20000, 1000x100000) — pipelined workspace screen vs the serial
# builder baseline, per-phase latency, allocation pin — plus the
# 1/2/4/8-worker sweep over every point, and records the results into
# BENCH_scale.json at the repo root. Equivalent to `make bench-scale`.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mfcpbench -scale all -scale-workers 1,2,4,8 -scale-json BENCH_scale.json
