#!/bin/sh
# promtext_lint.sh — validate a Prometheus text exposition (format 0.0.4)
# read from stdin or the file given as $1. Used by ci.sh and serve_smoke.sh
# to gate the /metrics surface: a scrape that Prometheus would reject or
# misparse should fail CI, not page someone later.
#
# Checks:
#   - sample-line syntax: metric name charset, quoted label values with only
#     the three legal escapes (\\ \" \n), a numeric value, optional timestamp
#   - label name charset and a consistent label-key order per series name
#   - HELP/TYPE headers: known types, at most one per family, TYPE before
#     the family's first sample
#   - every sample belongs to a family with a TYPE header (_bucket/_sum/
#     _count fold into their histogram/summary base family)
#   - duplicate series (same name + label set appearing twice)
#
# Exit 0 on a clean exposition, 1 with per-line diagnostics otherwise.
set -eu

awk '
function err(msg) {
	printf "promtext-lint: line %d: %s\n", NR, msg > "/dev/stderr"
	errs++
}
BEGIN { errs = 0; samples = 0 }
/^$/ { next }
/^# HELP / {
	split($0, a, " ")
	name = a[3]
	if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) err("bad metric name in HELP: " name)
	if (name in helped) err("duplicate HELP for " name)
	helped[name] = 1
	next
}
/^# TYPE / {
	split($0, a, " ")
	name = a[3]; t = a[4]
	if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) err("bad metric name in TYPE: " name)
	if (t !~ /^(counter|gauge|histogram|summary|untyped)$/) err("bad type \"" t "\" for " name)
	if (name in typed) err("duplicate TYPE for " name)
	if (name in sampled) err("TYPE for " name " after its first sample")
	typed[name] = t
	next
}
/^#/ { next }  # other comments are legal and ignored
{
	if (match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) {
		err("sample does not start with a metric name: " $0)
		next
	}
	name = substr($0, 1, RLENGTH)
	rest = substr($0, RLENGTH + 1)
	labels = ""; keys = ""
	if (substr(rest, 1, 1) == "{") {
		# Find the closing brace, honoring quotes and escapes.
		n = length(rest); inq = 0; esc = 0; end = 0
		for (i = 2; i <= n; i++) {
			c = substr(rest, i, 1)
			if (inq) {
				if (esc) {
					if (c != "\\" && c != "\"" && c != "n")
						err("illegal escape \\" c " in: " $0)
					esc = 0
				} else if (c == "\\") esc = 1
				else if (c == "\"") inq = 0
			} else if (c == "\"") inq = 1
			else if (c == "}") { end = i; break }
		}
		if (end == 0) { err("unterminated label set: " $0); next }
		labels = substr(rest, 2, end - 2)
		rest = substr(rest, end + 1)
		# Walk key="value" pairs to validate names and collect key order.
		rem = labels; bad = 0
		while (length(rem) > 0) {
			if (match(rem, /^[a-zA-Z_][a-zA-Z0-9_]*=/) == 0) {
				err("bad label pair near \"" rem "\" in: " $0); bad = 1; break
			}
			k = substr(rem, 1, RLENGTH - 1)
			keys = keys == "" ? k : keys "," k
			rem = substr(rem, RLENGTH + 1)
			if (substr(rem, 1, 1) != "\"") {
				err("unquoted label value in: " $0); bad = 1; break
			}
			closed = 0; esc = 0
			for (j = 2; j <= length(rem); j++) {
				c = substr(rem, j, 1)
				if (esc) esc = 0
				else if (c == "\\") esc = 1
				else if (c == "\"") { closed = j; break }
			}
			if (!closed) { err("unterminated label value in: " $0); bad = 1; break }
			rem = substr(rem, closed + 1)
			if (substr(rem, 1, 1) == ",") rem = substr(rem, 2)
			else if (length(rem) > 0) {
				err("garbage after label value in: " $0); bad = 1; break
			}
		}
		if (bad) next
	}
	if (rest !~ /^ (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)( -?[0-9]+)?$/) {
		err("bad sample value/timestamp \"" rest "\" for " name)
		next
	}
	samples++
	# Series uniqueness: one (name, label set) per exposition.
	series = name "{" labels "}"
	if (series in seen) err("duplicate series " series)
	seen[series] = 1
	# Key-order consistency per series name.
	if (name in keysOf) {
		if (keysOf[name] != keys)
			err("label keys \"" keys "\" for " name " differ from earlier \"" keysOf[name] "\"")
	} else keysOf[name] = keys
	# TYPE coverage: _bucket/_sum/_count fold into a histogram/summary base.
	base = name
	if (base ~ /_(bucket|sum|count)$/) {
		b = base
		sub(/_(bucket|sum|count)$/, "", b)
		if (typed[b] == "histogram" || typed[b] == "summary") base = b
	}
	if (!(base in typed)) err("sample " name " has no TYPE header")
	sampled[base] = 1
}
END {
	if (samples == 0) { print "promtext-lint: no samples in input" > "/dev/stderr"; errs++ }
	if (errs > 0) {
		printf "promtext-lint: %d problem(s) in %d sample(s)\n", errs, samples > "/dev/stderr"
		exit 1
	}
	printf "promtext-lint: ok (%d samples)\n", samples
}
' "${1:--}"
