#!/bin/sh
# Multi-tenant HTTP serving benchmark: closed-loop tenants against
# /v1/match, measured per-request (window=0) versus micro-batched
# (deadline-aware coalescing), recording throughput, latency percentiles,
# and the batched-vs-per-request speedup into BENCH_serve.json at the repo
# root. Equivalent to `make bench-serve`.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mfcpbench -serve all -serve-tenants 8 -serve-json BENCH_serve.json
