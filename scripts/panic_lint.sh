#!/bin/sh
# panic_lint.sh — enforce the error-handling contract from DESIGN.md §7.
#
# Two rules over tracked, non-test .go files:
#
#  1. A file containing a panic() call must be listed in
#     scripts/panic_allowlist.txt. New failure surfaces belong in
#     internal/mfcperr's typed-error taxonomy, not in new panics.
#  2. Outside examples/, every panic site must carry an "// invariant:"
#     comment on the same line or within the four lines above it, naming
#     the internal invariant that makes the branch unreachable from input.
#
# Run from the repository root. Exits non-zero listing every violation.
set -eu

allowlist=scripts/panic_allowlist.txt
fail=0

files=$(git ls-files '*.go' | grep -v '_test\.go$')

for f in $files; do
	# Strip line comments before matching so prose about panic() in doc
	# comments does not count as a call site.
	if ! sed 's|//.*||' "$f" | grep -qE '(^|[^a-zA-Z_])panic\(' 2>/dev/null; then
		continue
	fi
	if ! grep -qx "$f" "$allowlist"; then
		echo "panic-lint: $f calls panic() but is not in $allowlist" >&2
		echo "            convert it to an mfcperr typed error, or allowlist it" >&2
		fail=1
	fi
	case $f in examples/*) continue ;; esac
	bad=$(awk '
		{ code = $0; sub(/\/\/.*/, "", code) }
		code ~ /(^|[^a-zA-Z_])panic\(/ {
			ok = ($0 ~ /invariant:/)
			for (i = 1; i <= 4; i++) if (prev[i] ~ /invariant:/) ok = 1
			if (!ok) print FILENAME ":" FNR
		}
		{ for (i = 4; i > 1; i--) prev[i] = prev[i-1]; prev[1] = $0 }
	' "$f")
	if [ -n "$bad" ]; then
		echo "panic-lint: panic() without a nearby \"// invariant:\" comment at:" >&2
		echo "$bad" | sed 's/^/            /' >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "panic-lint: ok"
