#!/bin/sh
# checkpoint_smoke.sh — end-to-end save/interrupt/resume smoke test for the
# online serving loop, exercising the CLI surface the Go tests cannot reach:
# SIGINT delivery, exit code 130, the on-cancel checkpoint, and -resume.
#
#  1. Start an effectively unbounded `platformsim -online -checkpoint` run.
#  2. Wait for the first periodic checkpoint, SIGINT the process, and
#     require exit 130 with the INTERRUPTED banner.
#  3. Resume from the checkpoint, wait until a further periodic save shows
#     the loop advanced past the restored round, interrupt again, and
#     require the "[resuming at round N]" marker.
#
# Usage: scripts/checkpoint_smoke.sh [path-to-platformsim]
# (builds the binary when not given). Run from the repository root.
set -eu

BIN=${1:-}
if [ -z "$BIN" ]; then
	BIN=$(mktemp -d)/platformsim
	go build -o "$BIN" ./cmd/platformsim
fi

DIR=$(mktemp -d)
CK=$DIR/run.ckpt
PID=
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

run_until() { # run_until <logfile> <ready-predicate...>
	log=$1
	shift
	"$BIN" -method tsm -online -pool 48 -n 4 -rounds 1000000 -refit-every 5 \
		-checkpoint "$CK" ${RESUME:+-resume "$CK"} >"$log" 2>&1 &
	PID=$!
	i=0
	until "$@"; do
		i=$((i + 1))
		if [ "$i" -gt 300 ]; then
			echo "checkpoint-smoke: timed out waiting for $*" >&2
			cat "$log" >&2
			exit 1
		fi
		sleep 0.2
	done
	kill -INT "$PID"
	STATUS=0
	wait "$PID" || STATUS=$?
	if [ "$STATUS" -ne 130 ]; then
		echo "checkpoint-smoke: interrupted run exited $STATUS, want 130" >&2
		cat "$log" >&2
		exit 1
	fi
}

# Phase 1: interrupt once the first periodic checkpoint lands.
RESUME= run_until "$DIR/run1.log" test -s "$CK"
grep -q 'INTERRUPTED after' "$DIR/run1.log" || {
	echo "checkpoint-smoke: missing INTERRUPTED banner" >&2
	cat "$DIR/run1.log" >&2
	exit 1
}
SUM=$(cksum "$CK")

# Phase 2: resume; a changed checkpoint proves the loop advanced past the
# restored round before the second interrupt.
ck_advanced() { [ "$(cksum "$CK")" != "$SUM" ]; }
RESUME=1 run_until "$DIR/run2.log" ck_advanced
grep -q 'resuming at round' "$DIR/run2.log" || {
	echo "checkpoint-smoke: resume marker missing" >&2
	cat "$DIR/run2.log" >&2
	exit 1
}

echo "checkpoint-smoke: ok (interrupt -> 130, resume advanced the run)"
