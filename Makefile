# Developer entry points. `make ci` is what a CI job runs: vet + the full
# test suite under the race detector (the zeroth-order estimators and the
# parallel arenas share pooled workspaces across workers, so -race is not
# optional here).

GO ?= go

.PHONY: ci vet test race race-serving fmt-check lint-panic smoke-checkpoint smoke-serve bench bench-matching bench-train bench-platform bench-scale bench-serve bench-compare obs-demo

ci: fmt-check lint-panic vet race smoke-checkpoint smoke-serve

# Formatting gate: fails listing any tracked file gofmt would rewrite.
fmt-check:
	@unformatted=$$(gofmt -l $$(git ls-files '*.go')); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Error-taxonomy gate (DESIGN.md §7): panic() only in allowlisted files,
# and only with an adjacent "// invariant:" comment.
lint-panic:
	sh scripts/panic_lint.sh

# SIGINT/checkpoint/resume smoke test over the real platformsim binary.
smoke-checkpoint:
	sh scripts/checkpoint_smoke.sh

# HTTP serving smoke test over the real mfcpserve binary: batch served,
# metrics counters live, SIGTERM -> drain -> checkpoint -> exit 130.
smoke-serve:
	sh scripts/serve_smoke.sh

# Focused race gate for the concurrent serving engine: predictor snapshots,
# the sharded round pipeline, the lock-free observation ring, and the HTTP
# front-end's handler/batcher handoff under concurrent tenants. Part of
# `race` too; this target is the fast inner loop while editing those files.
race-serving:
	$(GO) test -race ./internal/platform ./internal/parallel ./internal/server

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Live-telemetry demo: an online platform run that keeps its /metrics,
# expvar, and pprof endpoints up after the simulation finishes. Point a
# browser or `curl -s localhost:9090/metrics | grep mfcp_` at it.
obs-demo:
	$(GO) run ./cmd/platformsim -method tsm -online -rounds 60 -pool 48 -n 4 \
		-refit-every 5 -metrics-addr 127.0.0.1:9090 -hold

# Matching-kernel micro-benchmarks; BENCH_matching.json records the
# before/after numbers for the allocation-free workspace rewrite.
bench-matching:
	$(GO) test ./internal/matching -run '^$$' -bench 'SolveRelaxed|Repair' -benchmem
	$(GO) test ./internal/diffopt -run '^$$' -bench 'BenchmarkRowVJP$$|BenchmarkFullVJP$$' -benchmem

# End-to-end training benchmarks; BENCH_train.json records the before/after
# numbers for the fast-predictor-pipeline rewrite (blocked GEMM, NN tapes,
# embedding cache).
bench-train:
	$(GO) test ./cmd/mfcpbench -run '^$$' -bench 'Pretrain|TrainMFCP' -benchmem

# Serving-engine throughput sweep (rounds/sec, tasks/sec at 1/2/4/8
# workers); BENCH_platform.json records the curve for the concurrent
# serving engine.
bench-platform:
	$(GO) test ./cmd/mfcpbench -run '^$$' -bench 'PlatformThroughput' -benchmem

# Production-dimension matching sweep (screen → cell solve → reconcile →
# repair at up to 1000 clusters × 100k tasks, plus the worker sweep);
# records the latency + rounds/sec curve into BENCH_scale.json.
bench-scale:
	sh scripts/bench_scale.sh

# Multi-tenant HTTP serving benchmark (closed-loop tenants, per-request vs
# micro-batched); records throughput + latency percentiles and the speedup
# into BENCH_serve.json.
bench-serve:
	sh scripts/bench_serve.sh

# Every benchmark in the repo, with allocation stats. Set BENCH_FLAGS to
# pass extras, e.g. BENCH_FLAGS='-count=10' for benchstat-ready samples.
bench:
	$(GO) test ./... -run '^$$' -bench . -benchmem $(BENCH_FLAGS)

# Before/after comparison recipe: capture a baseline on the old commit,
# re-run on the new one, and diff with benchstat:
#
#	git stash && make bench BENCH_FLAGS='-count=10' > /tmp/old.txt
#	git stash pop && make bench BENCH_FLAGS='-count=10' > /tmp/new.txt
#	benchstat /tmp/old.txt /tmp/new.txt
#
# benchstat (golang.org/x/perf/cmd/benchstat) is not vendored; the target
# just explains the workflow when it is absent.
bench-compare:
	@command -v benchstat >/dev/null 2>&1 && \
		echo "benchstat found: run 'make bench BENCH_FLAGS=-count=10' on each commit and benchstat the outputs" || \
		echo "install benchstat (go install golang.org/x/perf/cmd/benchstat@latest) to compare bench outputs; see Makefile comment for the recipe"
