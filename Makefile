# Developer entry points. `make ci` is what a CI job runs: vet + the full
# test suite under the race detector (the zeroth-order estimators and the
# parallel arenas share pooled workspaces across workers, so -race is not
# optional here).

GO ?= go

.PHONY: ci vet test race bench bench-matching

ci: vet race

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Matching-kernel micro-benchmarks; BENCH_matching.json records the
# before/after numbers for the allocation-free workspace rewrite.
bench-matching:
	$(GO) test ./internal/matching -run '^$$' -bench 'SolveRelaxed|Repair' -benchmem
	$(GO) test ./internal/diffopt -run '^$$' -bench 'BenchmarkRowVJP$$|BenchmarkFullVJP$$' -benchmem

bench:
	$(GO) test . -run '^$$' -bench . -benchmem
