package mfcp

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), plus component micro-benchmarks. Each experiment benchmark runs the
// corresponding harness at a reduced replicate budget so `go test -bench=.`
// finishes interactively; cmd/mfcpbench runs the full-budget versions that
// EXPERIMENTS.md records.

import (
	"testing"

	"mfcp/internal/matching"
	"mfcp/internal/rng"
)

// benchConfig is the reduced-budget experiment configuration shared by the
// table/figure benchmarks.
func benchConfig() ExperimentConfig {
	return ExperimentConfig{
		Replicates: 2, Rounds: 6, RoundSize: 5,
		PoolSize: 60, FeatureDim: 12,
		PretrainEpochs: 60, RegretEpochs: 16,
		Hidden: []int{8},
	}
}

// BenchmarkTable1Ablation regenerates Table 1 (the MFCP design ablation).
func BenchmarkTable1Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = uint64(i + 1)
		if tbl := Table1(cfg); len(tbl.Rows) != 4 {
			b.Fatal("ablation table malformed")
		}
	}
}

// BenchmarkFig4Overall regenerates Fig. 4 (overall comparison, settings
// A/B/C × five methods × three metrics).
func BenchmarkFig4Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = uint64(i + 1)
		if tables := Figure4(cfg); len(tables) != 3 {
			b.Fatal("expected one table per setting")
		}
	}
}

// BenchmarkFig5Scaling regenerates Fig. 5 (regret/utilization vs round size).
func BenchmarkFig5Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = uint64(i + 1)
		reg, util := Figure5(cfg, []int{5, 10})
		if len(reg.Rows) != 5 || len(util.Rows) != 5 {
			b.Fatal("scaling tables malformed")
		}
	}
}

// BenchmarkTable2Parallel regenerates Table 2 (parallel task execution).
func BenchmarkTable2Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = uint64(i + 1)
		if tbl := Table2(cfg); len(tbl.Rows) != 4 {
			b.Fatal("parallel table malformed")
		}
	}
}

// BenchmarkX1BetaSweep regenerates the Theorem 1 smoothing check.
func BenchmarkX1BetaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = uint64(i + 1)
		if tbl := ExtensionTable(cfg, "X1"); len(tbl.Rows) == 0 {
			b.Fatal("beta sweep empty")
		}
	}
}

// BenchmarkX3Convergence regenerates the Theorem 4/5 convergence check.
func BenchmarkX3Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = uint64(i + 1)
		if tbl := ExtensionTable(cfg, "X3"); len(tbl.Rows) != 2 {
			b.Fatal("convergence table malformed")
		}
	}
}

// --- Component benchmarks: the pieces the experiments are built from. ---

// BenchmarkScenarioBuild measures full environment materialization
// (task-graph generation, embedding, ground-truth + noisy profiling).
func BenchmarkScenarioBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewScenario(ScenarioConfig{PoolSize: 120, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchRound measures one full matching solve (relax → round →
// repair) on a 3×10 instance.
func BenchmarkMatchRound(b *testing.B) {
	s, err := NewScenario(ScenarioConfig{PoolSize: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	round := s.SampleRound([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 10, s.Stream("bench"))
	T, A := s.TrueMatrices(round)
	var mc MatchConfig
	mc.FillDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if assign := Match(mc, T, A); len(assign) != 10 {
			b.Fatal("bad assignment")
		}
	}
}

// BenchmarkExactMatch measures the branch-and-bound oracle on 3×10.
func BenchmarkExactMatch(b *testing.B) {
	s, err := NewScenario(ScenarioConfig{PoolSize: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	round := s.SampleRound([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 10, s.Stream("bench"))
	T, A := s.TrueMatrices(round)
	var mc MatchConfig
	mc.FillDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactMatch(mc, T, A)
	}
}

// BenchmarkMFCPTrainEpochAD measures one analytical-differentiation
// training epoch (solve + KKT backward + predictor update), amortized.
func BenchmarkMFCPTrainEpochAD(b *testing.B) {
	s, err := NewScenario(ScenarioConfig{PoolSize: 60, FeatureDim: 12, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	train, _ := s.Split(0.75)
	warm := PretrainPredictors(s, train, []int{8}, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(s, train, TrainerConfig{Kind: KindAD, Warm: warm, Epochs: 10, RoundSize: 5, ValRounds: -1})
	}
}

// BenchmarkMFCPTrainEpochFG measures zeroth-order training epochs.
func BenchmarkMFCPTrainEpochFG(b *testing.B) {
	s, err := NewScenario(ScenarioConfig{PoolSize: 60, FeatureDim: 12, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	train, _ := s.Split(0.75)
	warm := PretrainPredictors(s, train, []int{8}, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(s, train, TrainerConfig{Kind: KindFG, Warm: warm, Epochs: 10, RoundSize: 5, ValRounds: -1})
	}
}

// BenchmarkRelaxedSolver measures the mirror-descent inner solver alone.
func BenchmarkRelaxedSolver(b *testing.B) {
	r := rng.New(1)
	T := NewScenarioMatrix(r, 3, 25, 0.2, 3)
	A := NewScenarioMatrix(r, 3, 25, 0.7, 0.99)
	p := matching.NewProblem(T, A)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.SolveRelaxed(p, matching.SolveOptions{Iters: 200})
	}
}

// NewScenarioMatrix builds a uniform random matrix for benchmarks.
func NewScenarioMatrix(r *rng.Source, m, n int, lo, hi float64) *Matrix {
	out := &Matrix{Rows: m, Cols: n, Data: make([]float64, m*n)}
	for k := range out.Data {
		out.Data[k] = r.Uniform(lo, hi)
	}
	return out
}
