// Command mfcptrain trains one prediction method on a generated scenario
// and reports its test metrics and (for MFCP) the training-regret curve.
//
// Usage:
//
//	mfcptrain -method mfcp-ad -setting A -seed 42
//	mfcptrain -method tsm -pool 200 -rounds 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mfcp"
	"mfcp/internal/core"
	"mfcp/internal/experiments"
	"mfcp/internal/workload"
)

func main() {
	var (
		method    = flag.String("method", "mfcp-fg", "tam|tsm|ucb|mfcp-ad|mfcp-fg")
		setting   = flag.String("setting", "A", "cluster setting A|B|C")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		pool      = flag.Int("pool", 120, "task pool size")
		rounds    = flag.Int("rounds", 30, "evaluation rounds")
		roundSize = flag.Int("n", 5, "tasks per round")
		pretrain  = flag.Int("pretrain", 200, "MSE pretrain epochs")
		regret    = flag.Int("epochs", 120, "end-to-end regret epochs (MFCP only)")
		parallel  = flag.Bool("parallel", false, "parallel task execution setting (§3.4)")
		history   = flag.Bool("history", false, "print the MFCP training-regret curve")
	)
	flag.Parse()

	s, err := mfcp.NewScenario(workload.Config{
		Setting:  mfcp.Setting(strings.ToUpper(*setting)),
		PoolSize: *pool,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	train, test := s.Split(0.75)

	var mc core.MatchConfig
	mc.FillDefaults()
	if *parallel {
		for _, p := range s.Fleet {
			mc.Speedups = append(mc.Speedups, p.Speedup)
		}
	}

	var m mfcp.Method
	var tr *mfcp.Trainer
	switch *method {
	case "tam":
		m = mfcp.NewTAM(s, train)
	case "tsm":
		m = mfcp.NewTSM(s, train, []int{16}, *pretrain)
	case "ucb":
		m = mfcp.NewUCB(s, train)
	case "mfcp-ad", "mfcp-fg":
		kind := mfcp.KindAD
		if *method == "mfcp-fg" {
			kind = mfcp.KindFG
		}
		tr = mfcp.Train(s, train, core.Config{
			Kind: kind, PretrainEpochs: *pretrain, Epochs: *regret,
			RoundSize: *roundSize, Match: mc,
		})
		m = tr
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	agg := experiments.EvaluateMethod(s, m, test, mc, *rounds, *roundSize, s.Stream("cli-eval"))
	fmt.Printf("method=%s setting=%s seed=%d pool=%d N=%d rounds=%d\n",
		m.Name(), strings.ToUpper(*setting), *seed, *pool, *roundSize, *rounds)
	fmt.Printf("  regret       %.4f\n", agg.Regret)
	fmt.Printf("  reliability  %.4f\n", agg.Reliability)
	fmt.Printf("  utilization  %.4f\n", agg.Utilization)
	fmt.Printf("  makespan     %.4f (normalized; ×%.1fs wall clock)\n", agg.Makespan, s.TimeScale)
	fmt.Printf("  feasible     %.0f%%\n", 100*agg.FeasibleFrac)
	if tr != nil {
		fmt.Printf("  val regret   %.4f  (skipped epochs: %d)\n", tr.ValRegret, tr.SkippedEpochs)
		if *history {
			fmt.Println("  training-regret history:")
			for i, h := range tr.History {
				fmt.Printf("    epoch %3d  %.4f\n", i, h)
			}
		}
	}
}
