// Command mfcptrain trains one prediction method on a generated scenario
// and reports its test metrics and (for MFCP) the training-regret curve.
//
// SIGINT/SIGTERM interrupt training cooperatively at the next phase
// boundary; the partially trained predictors are still saved with
// -checkpoint, and the process exits 130. -resume warm-starts a
// predictor-backed method (tsm, mfcp-*) from a saved checkpoint's weights,
// skipping the MSE pretrain.
//
// Usage:
//
//	mfcptrain -method mfcp-ad -setting A -seed 42
//	mfcptrain -method tsm -pool 200 -rounds 40
//	mfcptrain -method tsm -backend ensemble          # calibrated-ensemble backend
//	mfcptrain -method mfcp-fg -checkpoint w.ckpt     # ^C-safe
//	mfcptrain -method mfcp-fg -resume w.ckpt -epochs 40
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mfcp"
	"mfcp/internal/baselines"
	"mfcp/internal/core"
	"mfcp/internal/experiments"
	"mfcp/internal/workload"
)

func main() {
	var (
		method     = flag.String("method", "mfcp-fg", "tam|tsm|ucb|mfcp-ad|mfcp-fg")
		backend    = flag.String("backend", "", "predictor backend family for tsm: mlp|ensemble|table (default mlp)")
		setting    = flag.String("setting", "A", "cluster setting A|B|C")
		seed       = flag.Uint64("seed", 1, "scenario seed")
		pool       = flag.Int("pool", 120, "task pool size")
		rounds     = flag.Int("rounds", 30, "evaluation rounds")
		roundSize  = flag.Int("n", 5, "tasks per round")
		pretrain   = flag.Int("pretrain", 200, "MSE pretrain epochs")
		regret     = flag.Int("epochs", 120, "end-to-end regret epochs (MFCP only)")
		parallel   = flag.Bool("parallel", false, "parallel task execution setting (§3.4)")
		history    = flag.Bool("history", false, "print the MFCP training-regret curve")
		checkpoint = flag.String("checkpoint", "", "save trained predictor weights here (tsm/mfcp-* only; also on interrupt)")
		resume     = flag.String("resume", "", "warm-start from weights saved by -checkpoint (tsm/mfcp-* only)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	predictorBacked := *method == "tsm" || *method == "mfcp-ad" || *method == "mfcp-fg"
	if (*checkpoint != "" || *resume != "") && !predictorBacked {
		fail(fmt.Errorf("-checkpoint/-resume need a predictor-backed method (tsm, mfcp-*), not %q", *method))
	}
	// -backend mlp is the default path; only non-MLP families divert tsm
	// onto the pluggable-backend machinery.
	backendFam := *backend
	if backendFam == core.BackendMLP {
		backendFam = ""
	}
	if backendFam != "" && *method != "tsm" {
		fail(fmt.Errorf("-backend %q serves supervised predictions and requires -method tsm, not %q", backendFam, *method))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default handling so a second signal kills at once
	}()

	s, err := mfcp.NewScenario(workload.Config{
		Setting:  mfcp.Setting(strings.ToUpper(*setting)),
		PoolSize: *pool,
		Seed:     *seed,
	})
	if err != nil {
		fail(err)
	}
	train, test := s.Split(0.75)

	var warm *mfcp.PredictorSet
	var warmBackend core.Backend
	if *resume != "" {
		ck, err := mfcp.LoadCheckpoint(*resume)
		if err != nil {
			fail(fmt.Errorf("resume: %w", err))
		}
		if backendFam != "" {
			if ck.Backend == nil {
				fail(fmt.Errorf("resume: checkpoint %s carries no predictor backend", *resume))
			}
			if got := ck.Backend.BackendName(); got != backendFam {
				fail(fmt.Errorf("resume: checkpoint %s holds backend %q, not %q", *resume, got, backendFam))
			}
			if err := ck.Backend.Validate(s.M(), s.Features.Cols); err != nil {
				fail(fmt.Errorf("resume: %w", err))
			}
			warmBackend = ck.Backend
		} else {
			if ck.Set == nil {
				fail(fmt.Errorf("resume: checkpoint %s carries no predictor set", *resume))
			}
			if err := ck.Set.Validate(s.M(), s.Features.Cols); err != nil {
				fail(fmt.Errorf("resume: %w", err))
			}
			warm = ck.Set
		}
		fmt.Fprintf(os.Stderr, "[warm-starting from %s]\n", *resume)
	}

	var mc core.MatchConfig
	mc.FillDefaults()
	if *parallel {
		for _, p := range s.Fleet {
			mc.Speedups = append(mc.Speedups, p.Speedup)
		}
	}

	saveSet := func(set *mfcp.PredictorSet) {
		if *checkpoint == "" || set == nil {
			return
		}
		if err := mfcp.SaveCheckpoint(*checkpoint, &mfcp.Checkpoint{Set: set}); err != nil {
			fail(fmt.Errorf("checkpoint: %w", err))
		}
		fmt.Fprintf(os.Stderr, "[weights saved to %s]\n", *checkpoint)
	}
	saveBackend := func(be core.Backend) {
		if *checkpoint == "" || be == nil {
			return
		}
		if err := mfcp.SaveCheckpoint(*checkpoint, &mfcp.Checkpoint{Backend: be}); err != nil {
			fail(fmt.Errorf("checkpoint: %w", err))
		}
		fmt.Fprintf(os.Stderr, "[weights saved to %s]\n", *checkpoint)
	}

	var m mfcp.Method
	var tr *mfcp.Trainer
	var trainedBackend core.Backend
	var trainErr error
	switch *method {
	case "tam":
		m = mfcp.NewTAM(s, train)
	case "tsm":
		switch {
		case backendFam != "":
			be := warmBackend
			if be == nil {
				// Mirror the platform's stream layout so weights trained here
				// match a platform run on the same scenario bit for bit.
				stream := s.Stream("backend-" + backendFam)
				var err error
				be, err = core.NewBackend(backendFam, s.M(), s.Features.Cols, []int{16}, stream.Split("init"))
				if err != nil {
					fail(err)
				}
				trainErr = be.Pretrain(ctx, s, train, *pretrain, stream.Split("train"))
			}
			trainedBackend = be
			m = &backendMethod{s: s, be: be}
			if trainErr == nil {
				defer saveBackend(be)
			}
		case warm != nil:
			m = mfcp.NewTSMFrom(s, warm)
		default:
			tsm, err := baselines.NewTSMCtx(ctx, s, train, []int{16}, *pretrain)
			trainErr = err
			m = tsm
			if trainErr == nil {
				defer saveSet(tsm.PredictorSet())
			}
		}
	case "ucb":
		m = mfcp.NewUCB(s, train)
	case "mfcp-ad", "mfcp-fg":
		kind := mfcp.KindAD
		if *method == "mfcp-fg" {
			kind = mfcp.KindFG
		}
		tr, trainErr = mfcp.TrainCtx(ctx, s, train, core.Config{
			Kind: kind, PretrainEpochs: *pretrain, Epochs: *regret,
			RoundSize: *roundSize, Match: mc, Warm: warm,
		})
		m = tr
		if trainErr == nil {
			defer saveSet(tr.Set)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
	if trainErr != nil {
		if !errors.Is(trainErr, mfcp.ErrCanceled) {
			fail(trainErr)
		}
		// Interrupted: persist whatever was learned, skip evaluation.
		phase := ""
		if tr != nil {
			phase = tr.Stopped
			saveSet(tr.Set)
		} else if trainedBackend != nil {
			phase = "pretrain"
			saveBackend(trainedBackend)
		} else if ts, ok := m.(interface{ PredictorSet() *mfcp.PredictorSet }); ok {
			phase = "pretrain"
			saveSet(ts.PredictorSet())
		}
		fmt.Fprintf(os.Stderr, "interrupted during %s; partial weights %s\n",
			phase, savedWord(*checkpoint))
		os.Exit(130)
	}

	agg := experiments.EvaluateMethod(s, m, test, mc, *rounds, *roundSize, s.Stream("cli-eval"))
	fmt.Printf("method=%s setting=%s seed=%d pool=%d N=%d rounds=%d\n",
		m.Name(), strings.ToUpper(*setting), *seed, *pool, *roundSize, *rounds)
	fmt.Printf("  regret       %.4f\n", agg.Regret)
	fmt.Printf("  reliability  %.4f\n", agg.Reliability)
	fmt.Printf("  utilization  %.4f\n", agg.Utilization)
	fmt.Printf("  makespan     %.4f (normalized; ×%.1fs wall clock)\n", agg.Makespan, s.TimeScale)
	fmt.Printf("  feasible     %.0f%%\n", 100*agg.FeasibleFrac)
	if tr != nil {
		fmt.Printf("  val regret   %.4f  (skipped epochs: %d)\n", tr.ValRegret, tr.SkippedEpochs)
		if *history {
			fmt.Println("  training-regret history:")
			for i, h := range tr.History {
				fmt.Printf("    epoch %3d  %.4f\n", i, h)
			}
		}
	}
}

func savedWord(path string) string {
	if path == "" {
		return "discarded (no -checkpoint)"
	}
	return "saved"
}

// backendMethod adapts a pluggable predictor backend to the evaluation
// harness's method interface. One-shot evaluation is the cold path, so
// Predict allocates a fresh workspace per call.
type backendMethod struct {
	s  *mfcp.Scenario
	be core.Backend
}

func (m *backendMethod) Name() string { return "TSM+" + m.be.BackendName() }

func (m *backendMethod) Predict(round []int) (T, A *mfcp.Matrix) {
	Z := m.s.FeaturesOf(round)
	T, A = new(mfcp.Matrix), new(mfcp.Matrix)
	m.be.PredictInto(Z, m.be.NewWorkspace(), T, A)
	return T, A
}
