package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMDrainsAndExits130 is the shutdown acceptance criterion run
// against the real binary: boot a small service, push concurrent tenant
// load, SIGTERM mid-flight, and require that every request is answered
// with an admission-contract status (200/503/429 — never a hung or torn
// response), a checkpoint lands on disk, and the process exits 130.
func TestSIGTERMDrainsAndExits130(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfcpserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ck := filepath.Join(dir, "serve.ckpt")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-method", "tsm", "-pool", "48", "-n", "4",
		"-pretrain-epochs", "30", "-regret-epochs", "4",
		"-refit-every", "3", "-window", "1ms", "-max-batch", "16",
		"-checkpoint", ck,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := waitServing(t, stderr)
	waitHealthy(t, base)

	// Closed-loop tenant load, running past the SIGTERM so some requests
	// are in flight when the drain begins.
	const tenants = 8
	var (
		wg      sync.WaitGroup
		ok      atomic.Int64
		shed    atomic.Int64
		sigSent atomic.Bool
		badMu   sync.Mutex
		bad     []string
	)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for j := 0; ; j++ {
				body := fmt.Sprintf(`{"tenant":"t%d","tasks":[%d,%d]}`, i, (i*5+j)%36, (i*7+j+1)%36)
				resp, err := client.Post(base+"/v1/match", "application/json", strings.NewReader(body))
				if err != nil {
					// Connection refused is legal only once the listener is
					// gone, which happens strictly after the signal.
					if !sigSent.Load() {
						badMu.Lock()
						bad = append(bad, err.Error())
						badMu.Unlock()
					}
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					shed.Add(1)
				default:
					badMu.Lock()
					bad = append(bad, fmt.Sprintf("status %d", resp.StatusCode))
					badMu.Unlock()
					return
				}
			}
		}(i)
	}

	time.Sleep(300 * time.Millisecond) // let load build
	sigSent.Store(true)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	err = cmd.Wait()
	var exitErr *exec.ExitError
	if err == nil {
		t.Fatal("process exited 0; want 130 after SIGTERM")
	} else if !asExitError(err, &exitErr) {
		t.Fatalf("wait: %v", err)
	}
	if code := exitErr.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130\nstdout:\n%s", code, stdout.String())
	}

	badMu.Lock()
	defer badMu.Unlock()
	for _, b := range bad {
		t.Errorf("request failed outside the admission contract: %s", b)
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded before the drain")
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("drain did not leave a checkpoint: %v", err)
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("missing drain summary in stdout:\n%s", stdout.String())
	}
	t.Logf("ok=%d shed=%d", ok.Load(), shed.Load())
}

// TestDebugTracesServesPhaseTimings is the tracing acceptance criterion
// run against the real binary: a request served through the batched HTTP
// path must be findable at /debug/traces by its request_id, carrying
// nonzero engine phase timings (the real session's trace hook, not a
// fake's).
func TestDebugTracesServesPhaseTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfcpserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-method", "tsm", "-pool", "48", "-n", "4",
		"-pretrain-epochs", "30", "-regret-epochs", "4",
		"-refit-every", "3", "-window", "1ms", "-max-batch", "16",
		"-trace-cap", "32",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := waitServing(t, stderr)
	waitHealthy(t, base)

	resp, err := http.Post(base+"/v1/match", "application/json",
		strings.NewReader(`{"tenant":"probe","tasks":[3,17,42]}`))
	if err != nil {
		t.Fatal(err)
	}
	var mr struct {
		RequestID uint64 `json:"request_id"`
		Round     int    `json:"round"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	if mr.RequestID == 0 {
		t.Fatal("response carries no request_id")
	}

	var dump struct {
		Capacity int `json:"capacity"`
		Traces   []struct {
			ID        uint64 `json:"id"`
			Tenant    string `json:"tenant"`
			Tasks     int    `json:"tasks"`
			Round     int    `json:"round"`
			QueueNs   int64  `json:"queue_ns"`
			PredictNs int64  `json:"predict_ns"`
			SolveNs   int64  `json:"solve_ns"`
			ExecNs    int64  `json:"exec_ns"`
			TotalNs   int64  `json:"total_ns"`
			Status    string `json:"status"`
		} `json:"traces"`
	}
	if resp, err = http.Get(base + "/debug/traces"); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dump.Capacity != 32 {
		t.Fatalf("trace capacity %d, want 32 from -trace-cap", dump.Capacity)
	}
	found := false
	for _, tr := range dump.Traces {
		if tr.ID != mr.RequestID {
			continue
		}
		found = true
		if tr.Tenant != "probe" || tr.Tasks != 3 || tr.Round != mr.Round || tr.Status != "ok" {
			t.Fatalf("trace does not describe the probe request: %+v", tr)
		}
		if tr.PredictNs <= 0 || tr.SolveNs <= 0 || tr.ExecNs <= 0 {
			t.Fatalf("trace missing engine phase timings: %+v", tr)
		}
		if tr.QueueNs < 0 || tr.TotalNs <= tr.SolveNs {
			t.Fatalf("trace spans inconsistent: %+v", tr)
		}
	}
	if !found {
		t.Fatalf("request %d not in /debug/traces (%d traces)", mr.RequestID, len(dump.Traces))
	}

	// The slow filter with an impossible threshold returns an empty set.
	if resp, err = http.Get(base + "/debug/traces?slow=10m"); err != nil {
		t.Fatal(err)
	}
	var filtered struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&filtered); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if filtered.Count != 0 {
		t.Fatalf("?slow=10m kept %d traces", filtered.Count)
	}

	// Per-tenant series from the same request are live on /metrics.
	if resp, err = http.Get(base + "/metrics"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `mfcp_tenant_requests_total{tenant="probe"} 1`) {
		t.Fatalf("metrics missing the probe tenant series:\n%s", buf.String())
	}

	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// waitServing scans the daemon's stderr for the serving banner and returns
// the base URL, echoing the rest of the stream in the background so the
// pipe never fills.
func waitServing(t *testing.T, stderr interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	sc := bufio.NewScanner(stderr)
	deadline := time.After(2 * time.Minute)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, okc := <-lines:
			if !okc {
				t.Fatal("stderr closed before the serving banner")
			}
			if i := strings.Index(line, "[serving on http://"); i >= 0 {
				addr := line[i+len("[serving on http://"):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				go func() { // drain the rest
					for range lines {
					}
				}()
				return "http://" + addr
			}
		case <-deadline:
			t.Fatal("timed out waiting for the serving banner")
		}
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var body map[string]string
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("service never became healthy")
}
