// Command mfcpserve runs the exchange platform as a long-lived multi-tenant
// HTTP service. It trains the predictors once at boot, then serves composed
// allocation rounds from POSTed task batches: a deadline-aware micro-batcher
// coalesces concurrent tenants' tasks into one shared screen+solve round
// (see internal/server and DESIGN.md §10).
//
// Endpoints: POST /v1/match, GET /v1/stats, GET /healthz, GET /metrics
// (Prometheus text + expvar + pprof under /debug/), GET /debug/traces
// (per-request phase-timing records, ?slow=DURATION to filter).
//
// SIGINT/SIGTERM drain cooperatively: admission stops (503), every accepted
// request is flushed and answered, the session checkpoints (with
// -checkpoint), and the process exits 130. A second signal kills it
// immediately.
//
// Usage:
//
//	mfcpserve -method tsm -addr 127.0.0.1:9310 -window 2ms
//	mfcpserve -method tsm -backend ensemble -risk 0.5   # risk-averse LCB serving
//	curl -s -X POST http://127.0.0.1:9310/v1/match \
//	     -d '{"tenant":"a","tasks":[3,17,42]}'
//	mfcpserve -checkpoint serve.ckpt            # ^C, then:
//	mfcpserve -checkpoint serve.ckpt -resume serve.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mfcp"
	"mfcp/internal/embed"
	"mfcp/internal/obs"
	"mfcp/internal/platform"
	"mfcp/internal/server"
	"mfcp/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9310", "listen address for the HTTP API")
		method     = flag.String("method", "tsm", "predictor method: tam|tsm|ucb|mfcp-ad|mfcp-fg")
		backend    = flag.String("backend", "", "predictor backend family: mlp|ensemble|table (default mlp; non-mlp needs -method tsm)")
		risk       = flag.Float64("risk", 0, "risk aversion κ: serve T̂=μ+κσ, Â=μ−κσ (needs -backend ensemble)")
		setting    = flag.String("setting", "A", "cluster setting A|B|C")
		seed       = flag.Uint64("seed", 1, "scenario seed")
		pool       = flag.Int("pool", 160, "task pool size")
		roundSize  = flag.Int("n", 5, "sampled round size (training horizon unit)")
		pretrain   = flag.Int("pretrain-epochs", 0, "pretrain epoch budget (0 = default)")
		regret     = flag.Int("regret-epochs", 0, "regret-descent epoch budget (0 = default)")
		refitEvery = flag.Int("refit-every", 10, "rounds per online refit window")
		asyncRefit = flag.Bool("async-refit", false, "train refits in the background")
		checkpoint = flag.String("checkpoint", "", "save a resumable checkpoint here periodically and on drain")
		ckEvery    = flag.Int("checkpoint-every", 1, "refit windows between periodic checkpoint saves")
		resume     = flag.String("resume", "", "resume from a checkpoint file saved by -checkpoint")
		window     = flag.Duration("window", 2*time.Millisecond, "micro-batching window (0 = per-request rounds)")
		maxBatch   = flag.Int("max-batch", 64, "max tasks per coalesced round (also the per-request cap)")
		queueCap   = flag.Int("queue-cap", 128, "admitted-request queue depth")
		tenantMax  = flag.Int("tenant-max-pending", 0, "per-tenant pending-task quota (0 = 4*max-batch)")
		highWater  = flag.Float64("ring-highwater", 0.9, "observation-ring backpressure threshold (fraction of capacity)")
		traceCap   = flag.Int("trace-cap", 256, "request traces kept for /debug/traces")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// First SIGINT/SIGTERM starts the drain; a second one restores default
	// handling, so it kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	reg := obs.NewRegistry()
	embed.RegisterMetrics(reg)

	ocfg := platform.OnlineConfig{
		Config: platform.Config{
			Scenario: workload.Config{
				Setting:  mfcp.Setting(strings.ToUpper(*setting)),
				PoolSize: *pool,
				Seed:     *seed,
			},
			Method:         platform.MethodName(*method),
			Backend:        *backend,
			RoundSize:      *roundSize,
			PretrainEpochs: *pretrain,
			RegretEpochs:   *regret,
			Telemetry:      reg,
		},
		RefitEvery:      *refitEvery,
		AsyncRefit:      *asyncRefit,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *ckEvery,
		MaxRoundTasks:   *maxBatch,
	}
	ocfg.Match.RiskAversion = *risk
	if *resume != "" {
		ck, err := mfcp.LoadCheckpoint(*resume)
		if err != nil {
			fail(fmt.Errorf("resume: %w", err))
		}
		ocfg.Resume = ck
		fmt.Fprintf(os.Stderr, "[resuming at round %d (%d refits done)]\n", ck.Round, ck.Refits)
	}

	fam := *backend
	if fam == "" {
		fam = "mlp"
	}
	fmt.Fprintf(os.Stderr, "[training %s predictors (backend=%s, pool=%d, setting=%s)]\n",
		*method, fam, *pool, strings.ToUpper(*setting))
	sess, err := platform.NewSession(ctx, ocfg)
	if err != nil {
		if errors.Is(err, mfcp.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "interrupted during training; nothing served")
			os.Exit(130)
		}
		fail(err)
	}

	srv := server.New(sess, server.Config{
		Window:           *window,
		MaxBatchTasks:    *maxBatch,
		QueueCap:         *queueCap,
		TenantMaxPending: *tenantMax,
		RingHighWater:    *highWater,
		TraceCap:         *traceCap,
		Telemetry:        reg,
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(lis) }()
	fmt.Fprintf(os.Stderr, "[serving on http://%s (window=%v, max-batch=%d)]\n",
		lis.Addr(), *window, *maxBatch)

	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop admission, answer everything accepted, checkpoint. Then
	// shut the listener down — handlers have their replies by now, so
	// Shutdown only waits for response bytes to flush.
	fmt.Fprintln(os.Stderr, "[draining: answering accepted requests, checkpointing]")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	drainErr := srv.Drain(dctx)
	dcancel()
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = httpSrv.Shutdown(sctx)
	scancel()
	if drainErr != nil {
		fail(fmt.Errorf("drain: %w", drainErr))
	}

	rep := sess.Finish()
	fmt.Printf("mfcpserve: drained cleanly\n")
	fmt.Printf("  rounds served   %d\n", len(rep.Rounds))
	fmt.Printf("  refits          %d (ring drops %d)\n", rep.Refits, rep.RingDropped)
	if len(rep.Rounds) > 0 {
		fmt.Printf("  mean regret     %.4f\n", rep.MeanRegret)
	}
	if *checkpoint != "" {
		fmt.Printf("  checkpoint      %s (resume with -resume %s)\n", *checkpoint, *checkpoint)
	}
	os.Exit(130)
}
