// Command datagen materializes a synthetic scenario to CSV files for
// inspection or use outside this repository: the task pool with graph
// statistics, the feature matrix, and the measured/true performance
// matrices per cluster.
//
// Usage:
//
//	datagen -out ./data -setting B -pool 200 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mfcp"
	"mfcp/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		setting = flag.String("setting", "A", "cluster setting A|B|C")
		pool    = flag.Int("pool", 160, "task pool size")
		dim     = flag.Int("dim", 16, "feature dimension")
		seed    = flag.Uint64("seed", 1, "scenario seed")
	)
	flag.Parse()

	s, err := mfcp.NewScenario(workload.Config{
		Setting:    mfcp.Setting(strings.ToUpper(*setting)),
		PoolSize:   *pool,
		FeatureDim: *dim,
		Seed:       *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// tasks.csv — pool with graph statistics.
	var b strings.Builder
	b.WriteString("task,name,family,nodes,depth,batch,steps_per_epoch,epochs,dataset_mb,epoch_gflops\n")
	for j, task := range s.Pool {
		c := task.Cost()
		fmt.Fprintf(&b, "%d,%s,%s,%d,%d,%d,%d,%d,%.1f,%.2f\n",
			j, task.Name, task.Family, c.Nodes, c.Depth, task.BatchSize,
			task.StepsPerEpoch, task.Epochs, task.DatasetMB, task.EpochFLOPs()/1e9)
	}
	write(*out, "tasks.csv", b.String())

	// features.csv
	b.Reset()
	b.WriteString("task")
	for d := 0; d < s.Features.Cols; d++ {
		fmt.Fprintf(&b, ",f%d", d)
	}
	b.WriteByte('\n')
	for j := 0; j < s.Features.Rows; j++ {
		fmt.Fprintf(&b, "%d", j)
		for _, v := range s.Features.Row(j) {
			fmt.Fprintf(&b, ",%.6f", v)
		}
		b.WriteByte('\n')
	}
	write(*out, "features.csv", b.String())

	// performance.csv — per (cluster, task): measured and true labels.
	b.Reset()
	b.WriteString("cluster,cluster_name,task,true_time_norm,meas_time_norm,true_reliability,meas_reliability\n")
	for i, p := range s.Fleet {
		for j := range s.Pool {
			fmt.Fprintf(&b, "%d,%s,%d,%.6f,%.6f,%.4f,%.4f\n",
				i, p.Name, j, s.TrueT.At(i, j), s.MeasT.At(i, j), s.TrueA.At(i, j), s.MeasA.At(i, j))
		}
	}
	write(*out, "performance.csv", b.String())

	fmt.Printf("wrote %s/{tasks,features,performance}.csv  (setting %s, %d tasks × %d clusters, time scale %.1fs)\n",
		*out, strings.ToUpper(*setting), len(s.Pool), s.M(), s.TimeScale)
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
