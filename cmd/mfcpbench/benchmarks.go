// In-binary benchmark runner. The same benchmark bodies back the standard
// `go test -bench` entry points (bench_test.go) and the binary's -bench
// flag, so numbers from either path are directly comparable:
//
//	mfcpbench -bench 'Pretrain|TrainMFCP'        # no test harness needed
//	mfcpbench -bench . -count 5                  # benchstat-ready samples
package main

import (
	"fmt"
	"os"
	"regexp"
	"testing"

	"mfcp/internal/core"
	"mfcp/internal/workload"
)

// trainBenchmarks is the registry the -bench flag matches against.
var trainBenchmarks = []struct {
	Name string
	F    func(b *testing.B)
}{
	{"Pretrain", benchPretrain},
	{"TrainMFCP", benchTrainMFCP},
}

// trainBenchScenario builds the small fixed workload shared by the training
// benchmarks: setting A (M=3 clusters), 60 tasks, 16-d features.
func trainBenchScenario() (*workload.Scenario, []int) {
	s := workload.MustNew(workload.Config{PoolSize: 60, FeatureDim: 16, Seed: 42})
	train, _ := s.Split(0.75)
	return s, train
}

// benchPretrain measures the MSE warm start — the entirety of the two-stage
// baseline's learning: 2M networks fitting measured labels.
func benchPretrain(b *testing.B) {
	s, train := trainBenchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream := s.Stream("bench-pretrain")
		set := core.NewPredictorSet(s.M(), s.Features.Cols, []int{16}, stream.Split("init"))
		core.PretrainMSE(set, s, train, 60, stream.Split("train"))
	}
}

// benchTrainMFCP measures the full MFCP-FG pipeline on a reduced budget:
// MSE warm start plus the end-to-end regret phase (per-epoch relaxed solves,
// zeroth-order gradients, per-cluster backprop, validation rounds).
func benchTrainMFCP(b *testing.B) {
	s, train := trainBenchScenario()
	cfg := core.Config{
		Kind:           core.FG,
		PretrainEpochs: 30,
		Epochs:         20,
		RoundSize:      5,
	}
	cfg.Match.SolveIters = 80
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Train(s, train, cfg)
	}
}

// runBenchmarks executes every registered benchmark matching the pattern,
// count times each, printing one benchstat-compatible line per run. It
// returns an exit code (2 on a bad pattern or no matches).
func runBenchmarks(pattern string, count int) int {
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-bench: bad pattern %q: %v\n", pattern, err)
		return 2
	}
	if count < 1 {
		count = 1
	}
	matched := 0
	for _, bm := range trainBenchmarks {
		if !re.MatchString(bm.Name) {
			continue
		}
		matched++
		for c := 0; c < count; c++ {
			r := testing.Benchmark(bm.F)
			fmt.Printf("Benchmark%s\t%8d\t%12.0f ns/op\t%8d B/op\t%8d allocs/op\n",
				bm.Name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "-bench: no benchmark matches %q (have:", pattern)
		for _, bm := range trainBenchmarks {
			fmt.Fprintf(os.Stderr, " %s", bm.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		return 2
	}
	return 0
}
