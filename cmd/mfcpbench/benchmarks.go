// In-binary benchmark runner. The same benchmark bodies back the standard
// `go test -bench` entry points (bench_test.go) and the binary's -bench
// flag, so numbers from either path are directly comparable:
//
//	mfcpbench -bench 'Pretrain|TrainMFCP'        # no test harness needed
//	mfcpbench -bench . -count 5                  # benchstat-ready samples
package main

import (
	"context"
	"fmt"
	"os"
	"regexp"
	"sync"
	"testing"

	"mfcp/internal/core"
	"mfcp/internal/embed"
	"mfcp/internal/mat"
	"mfcp/internal/obs"
	"mfcp/internal/parallel"
	"mfcp/internal/platform"
	"mfcp/internal/workload"
)

// benchEntry is one named benchmark in the -bench registry.
type benchEntry struct {
	Name string
	F    func(b *testing.B)
}

// trainBenchmarks is the registry the -bench flag matches against. The
// backend comparison sweep iterates the backend registry, so a newly
// registered predictor family shows up here without edits.
var trainBenchmarks = func() []benchEntry {
	bms := []benchEntry{
		{"Pretrain", benchPretrain},
		{"TrainMFCP", benchTrainMFCP},
	}
	for _, name := range core.BackendNames() {
		name := name
		bms = append(bms,
			benchEntry{"BackendPretrain/" + name, func(b *testing.B) { benchBackendPretrain(b, name) }},
			benchEntry{"BackendPredict/" + name, func(b *testing.B) { benchBackendPredict(b, name) }},
		)
	}
	return append(bms, servingBenchmarks...)
}()

// servingBenchmarks are the engine-throughput entries appended after the
// training and backend families.
var servingBenchmarks = []benchEntry{
	{"PlatformThroughput/workers=1", func(b *testing.B) { benchPlatformThroughput(b, 1, false) }},
	{"PlatformThroughput/workers=2", func(b *testing.B) { benchPlatformThroughput(b, 2, false) }},
	{"PlatformThroughput/workers=4", func(b *testing.B) { benchPlatformThroughput(b, 4, false) }},
	{"PlatformThroughput/workers=8", func(b *testing.B) { benchPlatformThroughput(b, 8, false) }},
	{"PlatformThroughput/workers=1/telemetry", func(b *testing.B) { benchPlatformThroughput(b, 1, true) }},
	{"PlatformThroughput/workers=2/telemetry", func(b *testing.B) { benchPlatformThroughput(b, 2, true) }},
	{"PlatformThroughput/workers=4/telemetry", func(b *testing.B) { benchPlatformThroughput(b, 4, true) }},
	{"PlatformThroughput/workers=8/telemetry", func(b *testing.B) { benchPlatformThroughput(b, 8, true) }},
}

// trainBenchScenario builds the small fixed workload shared by the training
// benchmarks: setting A (M=3 clusters), 60 tasks, 16-d features.
func trainBenchScenario() (*workload.Scenario, []int) {
	s := workload.MustNew(workload.Config{PoolSize: 60, FeatureDim: 16, Seed: 42})
	train, _ := s.Split(0.75)
	return s, train
}

// benchPretrain measures the MSE warm start — the entirety of the two-stage
// baseline's learning: 2M networks fitting measured labels.
func benchPretrain(b *testing.B) {
	s, train := trainBenchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream := s.Stream("bench-pretrain")
		set := core.NewPredictorSet(s.M(), s.Features.Cols, []int{16}, stream.Split("init"))
		core.PretrainMSE(set, s, train, 60, stream.Split("train"))
	}
}

// benchTrainMFCP measures the full MFCP-FG pipeline on a reduced budget:
// MSE warm start plus the end-to-end regret phase (per-epoch relaxed solves,
// zeroth-order gradients, per-cluster backprop, validation rounds).
func benchTrainMFCP(b *testing.B) {
	s, train := trainBenchScenario()
	cfg := core.Config{
		Kind:           core.FG,
		PretrainEpochs: 30,
		Epochs:         20,
		RoundSize:      5,
	}
	cfg.Match.SolveIters = 80
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Train(s, train, cfg)
	}
}

// benchBackendPretrain measures one pluggable backend's supervised MSE
// training on the shared workload — the cost of standing a predictor family
// up, per family, on the identical budget (60 epochs).
func benchBackendPretrain(b *testing.B, name string) {
	s, train := trainBenchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream := s.Stream("bench-backend-" + name)
		be, err := core.NewBackend(name, s.M(), s.Features.Cols, []int{16}, stream.Split("init"))
		if err != nil {
			// invariant: names come from the backend registry itself.
			panic(err)
		}
		if err := be.Pretrain(context.Background(), s, train, 60, stream.Split("train")); err != nil {
			// invariant: benchmark fixtures use known-good configs and a
			// background context.
			panic(err)
		}
	}
}

// benchBackendPredictTasks is the batch width of the predict sweep — the
// serving engine's typical coalesced-round scale.
const benchBackendPredictTasks = 64

// benchBackendPredict measures one backend's steady-state batched forward:
// PredictInto on a warm caller-owned workspace over a 64-task round. This is
// the serving hot path; every family must hold 0 allocs/op (the conformance
// suite pins it, this records the latency spread between families).
func benchBackendPredict(b *testing.B, name string) {
	s, train := trainBenchScenario()
	stream := s.Stream("bench-backend-" + name)
	be, err := core.NewBackend(name, s.M(), s.Features.Cols, []int{16}, stream.Split("init"))
	if err != nil {
		// invariant: names come from the backend registry itself.
		panic(err)
	}
	if err := be.Pretrain(context.Background(), s, train, 10, stream.Split("train")); err != nil {
		// invariant: benchmark fixtures use known-good configs and a
		// background context.
		panic(err)
	}
	round := make([]int, benchBackendPredictTasks)
	for i := range round {
		round[i] = (i * 7) % s.PoolLen()
	}
	Z := s.FeaturesOf(round)
	ws := be.NewWorkspace()
	That, Ahat := new(mat.Dense), new(mat.Dense)
	be.PredictInto(Z, ws, That, Ahat) // warm the workspace tapes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.PredictInto(Z, ws, That, Ahat)
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N)*benchBackendPredictTasks/secs, "tasks/sec")
	}
}

// platformBenchEngine builds the shared serving engines once (one bare, one
// with a live metrics registry attached): the throughput sweep measures
// serving, not scenario construction or method training. The telemetry
// variant quantifies instrumentation overhead against the same workload.
var (
	platformEngOnce [2]sync.Once
	platformEngs    [2]*platform.Engine
)

func platformBenchEngine(telemetry bool) *platform.Engine {
	idx := 0
	if telemetry {
		idx = 1
	}
	platformEngOnce[idx].Do(func() {
		cfg := platform.Config{
			Scenario:       workload.Config{PoolSize: 120, FeatureDim: 16, Seed: 42},
			Method:         platform.MethodTSM,
			RoundSize:      6,
			PretrainEpochs: 40,
			Hidden:         []int{16},
		}
		if telemetry {
			cfg.Telemetry = obs.NewRegistry()
		}
		en, err := platform.NewEngine(cfg)
		if err != nil {
			// invariant: benchmark fixtures use known-good configs.
			panic(err)
		}
		platformEngs[idx] = en
	})
	return platformEngs[idx]
}

// benchServeRounds is the number of allocation rounds per benchmark op.
const benchServeRounds = 32

// benchPlatformThroughput measures the serving engine end to end — round
// sampling, NN prediction, relaxed matching, oracle scoring, simulated
// execution — at a pinned worker count, reporting rounds/sec and tasks/sec.
// With telemetry, every round additionally records its phase spans, solver
// convergence, and rolling-quality gauges into a live registry.
func benchPlatformThroughput(b *testing.B, workers int, telemetry bool) {
	en := platformBenchEngine(telemetry)
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := en.ServeRounds(benchServeRounds); err != nil {
			// invariant: benchmark fixtures use known-good configs.
			panic(err)
		}
	}
	rounds := float64(b.N) * benchServeRounds
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(rounds/secs, "rounds/sec")
		b.ReportMetric(rounds*float64(en.RoundSize())/secs, "tasks/sec")
	}
}

// runBenchmarks executes every registered benchmark matching the pattern,
// count times each, printing one benchstat-compatible line per run. It
// returns an exit code (2 on a bad pattern or no matches).
func runBenchmarks(pattern string, count int) int {
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-bench: bad pattern %q: %v\n", pattern, err)
		return 2
	}
	if count < 1 {
		count = 1
	}
	matched := 0
	for _, bm := range trainBenchmarks {
		if !re.MatchString(bm.Name) {
			continue
		}
		matched++
		for c := 0; c < count; c++ {
			r := testing.Benchmark(bm.F)
			fmt.Printf("Benchmark%s\t%8d\t%12.0f ns/op\t%8d B/op\t%8d allocs/op",
				bm.Name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
			for _, unit := range []string{"rounds/sec", "tasks/sec"} {
				if v, ok := r.Extra[unit]; ok {
					fmt.Printf("\t%12.1f %s", v, unit)
				}
			}
			fmt.Println()
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "-bench: no benchmark matches %q (have:", pattern)
		for _, bm := range trainBenchmarks {
			fmt.Fprintf(os.Stderr, " %s", bm.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		return 2
	}
	// One-shot telemetry digest: process-wide instruments (currently the
	// embedding cache) snapshotted through the metrics registry, replacing
	// the old hand-rolled cache print.
	reg := obs.NewRegistry()
	embed.RegisterMetrics(reg)
	fmt.Fprintln(os.Stderr, "--- telemetry ---")
	_ = reg.WriteSummary(os.Stderr)
	return 0
}
