// HTTP serving benchmark. The scale sweep (scale.go) measures the matching
// pipeline at production dimensions; this one measures the multi-tenant
// front-end (internal/server) that ROADMAP item 1 promoted the engine into:
// concurrent tenants POST task batches to /v1/match and the deadline-aware
// micro-batcher coalesces them into shared screen+solve rounds. The
// benchmark runs the same closed-loop tenant load twice against fresh
// sessions — once with coalescing disabled (window=0: every request is its
// own round, the per-request baseline) and once with a small batching
// window — and reports throughput and latency percentiles for both, plus
// the speedup. Amortizing the fixed per-round cost (problem build,
// workspace resets, oracle scoring, execution setup) across the tenants in
// a window is the whole point, so tasks/sec is the headline number and the
// batched p95 must not regress.
//
// `mfcpbench -serve all -serve-json BENCH_serve.json` records the document
// (scripts/bench_serve.sh / `make bench-serve`); `-serve smoke` is the CI
// gate: a short pass with structural assertions only.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"mfcp/internal/platform"
	"mfcp/internal/server"
	"mfcp/internal/workload"
)

// serveEnv records where the numbers were measured. Throughput claims are
// meaningless without the host shape next to them.
type serveEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	Gomaxprocs int    `json:"gomaxprocs"`
	// Warning flags measurement conditions that undermine the comparison
	// (e.g. a single-CPU host, where client and server contend for one core).
	Warning string `json:"warning,omitempty"`
}

func currentServeEnv() serveEnv {
	e := serveEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}
	if e.CPUs == 1 {
		e.Warning = "single-CPU host: load generator and server share one core; latency percentiles include scheduler contention"
	}
	return e
}

// serveModeResult is one measured serving mode (per-request or batched).
type serveModeResult struct {
	Name     string  `json:"name"`
	WindowMs float64 `json:"window_ms"`
	// Closed-loop totals over the measured duration.
	Requests     int     `json:"requests"`
	TasksServed  int     `json:"tasks_served"`
	Shed         int     `json:"shed"`
	RoundsServed int64   `json:"rounds_served"`
	MeanCoalesce float64 `json:"mean_coalesced"`
	TasksPerSec  float64 `json:"tasks_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
}

// serveReport is the BENCH_serve.json document.
type serveReport struct {
	Description string            `json:"description"`
	Reproduce   string            `json:"reproduce"`
	Env         serveEnv          `json:"environment"`
	Tenants     int               `json:"tenants"`
	TasksPerReq int               `json:"tasks_per_request"`
	SecsPerMode float64           `json:"seconds_per_mode"`
	Modes       []serveModeResult `json:"modes"`
	// Speedup is batched tasks/sec over per-request tasks/sec.
	Speedup float64  `json:"speedup"`
	Notes   []string `json:"notes"`
}

// serveBenchTasks is the per-request batch size. Small per-tenant batches
// are the regime micro-batching targets: the fixed per-round cost dominates
// a 4-task solve, so serving 8 tenants as one coalesced round amortizes it.
const serveBenchTasks = 4

// serveBenchCfg is the shared session configuration: a realistic pool with
// a training budget small enough that each mode's fresh session boots in
// seconds. Both modes train identical predictors (same seed), so the only
// variable between them is the batching window.
func serveBenchCfg() platform.OnlineConfig {
	return platform.OnlineConfig{
		Config: platform.Config{
			Scenario:       workload.Config{PoolSize: 160, Seed: 7},
			Method:         platform.MethodTSM,
			RoundSize:      serveBenchTasks,
			PretrainEpochs: 60,
			RegretEpochs:   12,
		},
		RefitEvery: 10,
		// Background refits, as a deployment would run them: a synchronous
		// refit stalls every tenant sharing the window, and the batched mode
		// crosses refit boundaries more often per second precisely because it
		// serves more rounds per second — the tail would be charged to the
		// optimization being measured.
		AsyncRefit:    true,
		MaxRoundTasks: 64,
	}
}

// runServeMode boots a fresh session and front-end, drives tenants
// closed-loop POSTers against it for dur, and measures.
func runServeMode(name string, window time.Duration, tenants int, dur time.Duration) (serveModeResult, error) {
	res := serveModeResult{Name: name, WindowMs: float64(window) / 1e6}
	sess, err := platform.NewSession(context.Background(), serveBenchCfg())
	if err != nil {
		return res, fmt.Errorf("serve %s: session: %w", name, err)
	}
	s := server.New(sess, server.Config{
		Window:        window,
		MaxBatchTasks: 64,
		QueueCap:      256,
	})
	ts := httptest.NewServer(s.Handler())

	poolLen := sess.PoolLen()
	type tenantStats struct {
		lat       []time.Duration
		tasks     int
		shed      int
		coalesced int
		err       error
	}
	stats := make([]tenantStats, tenants)
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	start := time.Now()
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			client := ts.Client()
			for j := 0; time.Now().Before(deadline); j++ {
				tasks := make([]int, serveBenchTasks)
				for k := range tasks {
					tasks[k] = (i*31 + j*serveBenchTasks + k) % poolLen
				}
				body, _ := json.Marshal(server.MatchRequest{Tenant: fmt.Sprintf("t%d", i), Tasks: tasks})
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
				if err != nil {
					st.err = fmt.Errorf("serve %s: tenant %d: %w", name, i, err)
					return
				}
				var mr server.MatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&mr)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						st.err = fmt.Errorf("serve %s: tenant %d: decode: %w", name, i, decErr)
						return
					}
					if len(mr.Assignments) != serveBenchTasks {
						st.err = fmt.Errorf("serve %s: tenant %d: %d assignments, want %d", name, i, len(mr.Assignments), serveBenchTasks)
						return
					}
					st.lat = append(st.lat, time.Since(t0))
					st.tasks += serveBenchTasks
					st.coalesced += mr.Coalesced
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					st.shed++
				default:
					st.err = fmt.Errorf("serve %s: tenant %d: status %d", name, i, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res.RoundsServed = int64(sess.Served())
	drainAndClose(s, ts)
	for i := range stats {
		if stats[i].err != nil {
			return res, stats[i].err
		}
	}

	var lat []time.Duration
	coalesceSum := 0
	for i := range stats {
		lat = append(lat, stats[i].lat...)
		res.Requests += len(stats[i].lat)
		res.TasksServed += stats[i].tasks
		res.Shed += stats[i].shed
		coalesceSum += stats[i].coalesced
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("serve %s: no request succeeded", name)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	res.MeanCoalesce = float64(coalesceSum) / float64(res.Requests)
	res.TasksPerSec = float64(res.TasksServed) / elapsed.Seconds()
	res.P50Ms = servePercentile(lat, 0.50)
	res.P95Ms = servePercentile(lat, 0.95)
	res.P99Ms = servePercentile(lat, 0.99)
	return res, nil
}

func drainAndClose(s *server.Server, ts *httptest.Server) {
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Drain(dctx)
	ts.Close()
}

// servePercentile reads the q-quantile off a sorted latency slice, in ms.
func servePercentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e6
}

// runServe executes the serving benchmark: "smoke" (short pass, structural
// assertions) or "all" (the full measured comparison). jsonPath, when
// non-empty, receives the serveReport document.
func runServe(mode, jsonPath string, tenants int, dur time.Duration) int {
	switch mode {
	case "smoke":
		dur = 300 * time.Millisecond
	case "all":
	default:
		fmt.Fprintf(os.Stderr, "-serve: unknown mode %q (have smoke, all)\n", mode)
		return 2
	}
	if tenants < 1 {
		fmt.Fprintln(os.Stderr, "-serve-tenants must be >= 1")
		return 2
	}

	env := currentServeEnv()
	if env.Warning != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", env.Warning)
	}
	rep := serveReport{
		Description: "Multi-tenant HTTP match-serving: closed-loop tenants POSTing task batches to /v1/match, measured per-request (window=0: one round per request, the baseline) versus micro-batched (deadline-aware coalescing into one shared screen+solve round). The speedup is amortization of the fixed per-round cost across the tenants sharing a window.",
		Reproduce:   "scripts/bench_serve.sh  (or: go run ./cmd/mfcpbench -serve all -serve-json BENCH_serve.json)",
		Env:         env,
		Tenants:     tenants,
		TasksPerReq: serveBenchTasks,
		SecsPerMode: dur.Seconds(),
		Notes: []string{
			"Both modes run identical fresh sessions (same scenario seed, same trained predictors); the only variable is the batching window.",
			"Closed-loop load: each tenant has exactly one request in flight, so per-request mode serializes the tenants behind one another's solves while batched mode coalesces them into one round per window.",
			"mean_coalesced is the average number of requests sharing the round that answered; 1.0 means every round carried a single tenant.",
			"Latency percentiles are client-observed; batched p95 includes the coalescing window wait and must still not regress against per-request queueing.",
			"tasks_per_sec counts only tasks answered 200; shed requests (503/429 backpressure) are reported separately.",
			"Measured with the full labeled-telemetry path live (per-tenant counter/histogram/gauge families, status-class counters, per-route solve histograms) and the request-trace ring recording every request: batched throughput is within run-to-run noise of the pre-label record (2278 tasks/sec), so the labeled hot path and lock-free trace writes cost nothing measurable at this load.",
		},
	}

	modes := []struct {
		name   string
		window time.Duration
	}{
		{"per-request", 0},
		{"batched", 2 * time.Millisecond},
	}
	for _, m := range modes {
		r, err := runServeMode(m.name, m.window, tenants, dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rep.Modes = append(rep.Modes, r)
		fmt.Printf("serve %-12s  window=%4.1fms  %6d req  %7d tasks  %8.0f tasks/sec  coalesce=%4.1f  p50=%6.2fms  p95=%6.2fms  p99=%6.2fms  shed=%d\n",
			r.Name, r.WindowMs, r.Requests, r.TasksServed, r.TasksPerSec, r.MeanCoalesce, r.P50Ms, r.P95Ms, r.P99Ms, r.Shed)
	}
	base, batched := rep.Modes[0], rep.Modes[1]
	rep.Speedup = batched.TasksPerSec / base.TasksPerSec
	fmt.Printf("serve speedup: %.2fx tasks/sec (batched vs per-request), p95 %0.2fms vs %0.2fms\n",
		rep.Speedup, batched.P95Ms, base.P95Ms)
	if mode == "smoke" && batched.MeanCoalesce <= 1 {
		fmt.Fprintln(os.Stderr, "serve smoke: batched mode never coalesced")
		return 1
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return 0
}
