// Command mfcpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mfcpbench -exp all                    # every table and figure
//	mfcpbench -exp fig4 -replicates 10    # overall comparison, more reps
//	mfcpbench -exp table2 -csv            # parallel setting, CSV output
//	mfcpbench -bench 'Pretrain' -count 5  # training benchmarks, no test harness
//
// Experiments: table1, fig4, fig5, table2, beta (X1), zo (X2), conv (X3),
// lambda (X4), all. The -bench flag instead runs the end-to-end training
// benchmarks (see benchmarks.go) matching the given regexp, -count times
// each, and exits; output is benchstat-compatible.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mfcp"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig4|fig5|table2|beta|zo|conv|lambda|routes|samples|noise|gamma|drift|solvers|embed|all")
		replicates = flag.Int("replicates", 0, "independent repetitions per cell (0 = default)")
		rounds     = flag.Int("rounds", 0, "evaluation rounds per replicate (0 = default)")
		roundSize  = flag.Int("n", 0, "tasks per round (0 = default 5)")
		seed       = flag.Uint64("seed", 0, "base seed (0 = default 1)")
		setting    = flag.String("setting", "A", "cluster setting for single-setting experiments: A|B|C")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plotOut    = flag.Bool("plot", false, "also render ASCII charts for fig4 and fig5")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
		bench      = flag.String("bench", "", "run training benchmarks matching this regexp instead of experiments")
		count      = flag.Int("count", 1, "repetitions per benchmark (with -bench)")
		scale      = flag.String("scale", "", "run the production-dimension matching sweep: smoke|all|<point name> (see scale.go)")
		scaleJSON  = flag.String("scale-json", "", "with -scale: also write the results as JSON to this path")
		scaleWork  = flag.String("scale-workers", "1,2,4,8", "with -scale all: comma-separated worker counts for the pipelined worker sweep")
		serve      = flag.String("serve", "", "run the HTTP serving benchmark: smoke|all (see serve.go)")
		serveJSON  = flag.String("serve-json", "", "with -serve: also write the results as JSON to this path")
		serveTen   = flag.Int("serve-tenants", 8, "with -serve: concurrent closed-loop tenants")
		serveSecs  = flag.Duration("serve-secs", 2*time.Second, "with -serve all: measured duration per serving mode")
	)
	flag.Parse()

	if *bench != "" {
		os.Exit(runBenchmarks(*bench, *count))
	}
	if *scale != "" {
		os.Exit(runScale(*scale, *scaleJSON, *scaleWork))
	}
	if *serve != "" {
		os.Exit(runServe(*serve, *serveJSON, *serveTen, *serveSecs))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	cfg := mfcp.ExperimentConfig{
		Replicates: *replicates,
		Rounds:     *rounds,
		RoundSize:  *roundSize,
		Seed:       *seed,
		Setting:    mfcp.Setting(strings.ToUpper(*setting)),
	}

	emit := func(t *mfcp.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			emit(mfcp.Table1(cfg))
		case "fig4":
			for _, t := range mfcp.Figure4(cfg) {
				emit(t)
			}
			if *plotOut {
				for _, set := range []string{"A", "B", "C"} {
					c := cfg
					c.Setting = mfcp.Setting(set)
					results := mfcp.CompareMethods(c, true)
					fmt.Println(mfcp.RegretChart("Fig. 4 setting "+set, results))
					fmt.Println(mfcp.UtilizationChart("Fig. 4 setting "+set, results))
				}
			}
		case "fig5":
			reg, util := mfcp.Figure5(cfg, nil)
			emit(reg)
			emit(util)
			if *plotOut {
				regChart, utilChart := mfcp.Figure5Charts(cfg, nil)
				fmt.Println(regChart)
				fmt.Println(utilChart)
			}
		case "table2":
			emit(mfcp.Table2(cfg))
		case "beta", "zo", "conv", "lambda", "routes", "samples", "noise", "gamma", "drift", "solvers", "embed":
			key := map[string]string{
				"beta": "X1", "zo": "X2", "conv": "X3", "lambda": "X4",
				"routes": "X5", "samples": "X6", "noise": "X7", "gamma": "X8", "drift": "X9", "solvers": "X10", "embed": "X11",
			}[name]
			emit(mfcp.ExtensionTable(cfg, key))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig4", "fig5", "table2", "beta", "zo", "conv", "lambda", "routes", "samples", "noise", "gamma", "drift", "solvers", "embed"} {
			run(name)
		}
		return
	}
	run(*exp)
}
