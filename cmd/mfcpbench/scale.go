// Production-dimension scale sweep. Experiments and micro-benchmarks run
// at the paper's evaluation sizes (M ≤ 8); this sweep runs the sparse
// matching pipeline at platform dimensions — up to 1000 clusters × 100 000
// tasks — where dense M×N matrices (800 MB each at the top point) must
// never exist. Screening therefore generates candidate scores on the fly
// (a counter-hash PRNG keyed by round/task/cluster) and feeds survivors
// straight into a matching.SparseBuilder; the solve is the hierarchical
// cell pipeline with capacity reconciliation and bounded sparse repair.
//
// `mfcpbench -scale all` runs every point plus the worker sweep and,
// with -scale-json, records BENCH_scale.json (scripts/bench_scale.sh /
// `make bench-scale`). `-scale smoke` is the CI gate: the smallest point,
// one round, structural assertions only.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mfcp/internal/matching"
	"mfcp/internal/parallel"
)

// scalePoint is one production-dimension configuration of the sweep.
type scalePoint struct {
	Name string `json:"name"`
	M    int    `json:"m"`
	N    int    `json:"n"`
	// TopK candidates are kept per task out of a Cand-wide screened window.
	TopK int `json:"topk"`
	Cand int `json:"-"`
	// Cells is the hierarchical partition width.
	Cells int `json:"cells"`
	// Rounds per measurement; the big points run fewer.
	Rounds int `json:"rounds"`
	// SolveIters/SolveTol budget the per-cell relaxed solves.
	SolveIters int     `json:"solve_iters"`
	SolveTol   float64 `json:"solve_tol"`
}

var scalePoints = []scalePoint{
	{Name: "64x2000", M: 64, N: 2000, TopK: 8, Cand: 24, Cells: 2, Rounds: 20, SolveIters: 60, SolveTol: 1e-5},
	{Name: "256x20000", M: 256, N: 20000, TopK: 8, Cand: 24, Cells: 8, Rounds: 8, SolveIters: 60, SolveTol: 1e-5},
	{Name: "1000x100000", M: 1000, N: 100000, TopK: 8, Cand: 24, Cells: 16, Rounds: 3, SolveIters: 60, SolveTol: 1e-5},
}

// scaleWorkerPoint is the configuration the 1/2/4/8-worker sweep runs at.
const scaleWorkerPoint = "256x20000"

// scaleResult is one measured point of the sweep.
type scaleResult struct {
	scalePoint
	NNZ          int     `json:"nnz"`
	ScreenMs     float64 `json:"screen_ms"`
	SolveMs      float64 `json:"solve_ms"`
	MeanRoundMs  float64 `json:"mean_round_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	TasksPerSec  float64 `json:"tasks_per_sec"`
}

// scaleWorkerResult is one worker count's throughput at scaleWorkerPoint.
type scaleWorkerResult struct {
	Workers      int     `json:"workers"`
	MeanRoundMs  float64 `json:"mean_round_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	Description string              `json:"description"`
	Reproduce   string              `json:"reproduce"`
	Points      []scaleResult       `json:"points"`
	WorkerSweep []scaleWorkerResult `json:"worker_sweep,omitempty"`
	Notes       []string            `json:"notes"`
}

// scaleMix is a splitmix64-style finalizer: the counter-based generator
// behind the synthetic score streams. Keyed hashing means any (round, task,
// cluster) score is computable independently — nothing is materialized.
func scaleMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// scaleU01 maps a hash to [0, 1).
func scaleU01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// scaleScores returns the synthetic predicted (time, reliability) for
// (cluster i, task j) in round r. Times mix a per-cluster speed factor
// with per-pair affinity so the top-k sets are cluster-discriminating;
// reliabilities sit around the γ=0.8 threshold so repair has real work.
func scaleScores(seed uint64, r, j, i int) (float64, float64) {
	h := scaleMix(seed ^ scaleMix(uint64(r)<<40^uint64(j)<<20^uint64(i)))
	speed := 0.5 + 1.5*scaleU01(scaleMix(seed^uint64(0xC1)<<56^uint64(i)))
	t := speed * (0.1 + 0.9*scaleU01(h))
	a := 0.55 + 0.45*scaleU01(scaleMix(h^0xA5))
	return t, a
}

// scaleScreen builds round r's sparse problem: for each task it scans a
// Cand-wide pseudo-random window of clusters, keeps the TopK fastest plus
// the most reliable (the PruneTopK contract), and emits them into a
// SparseBuilder — O(N·Cand) time and O(nnz) memory, dense-free.
func scaleScreen(pt scalePoint, seed uint64, r int) *matching.SparseProblem {
	b := matching.NewSparseBuilder(pt.M, pt.N)
	window := make([]int, 0, pt.Cand)
	type cand struct {
		i    int
		t, a float64
	}
	cands := make([]cand, 0, pt.Cand)
	for j := 0; j < pt.N; j++ {
		// Distinct pseudo-random candidate window for task j.
		window = window[:0]
		h := scaleMix(seed ^ uint64(0xB7)<<56 ^ uint64(j))
		for len(window) < pt.Cand {
			h = scaleMix(h)
			c := int(h % uint64(pt.M))
			dup := false
			for _, w := range window {
				if w == c {
					dup = true
					break
				}
			}
			if !dup {
				window = append(window, c)
			}
		}
		cands = cands[:0]
		for _, i := range window {
			t, a := scaleScores(seed, r, j, i)
			cands = append(cands, cand{i, t, a})
		}
		// Partial selection: TopK smallest times to the front.
		k := pt.TopK
		if k > len(cands) {
			k = len(cands)
		}
		for s := 0; s < k; s++ {
			best := s
			for u := s + 1; u < len(cands); u++ {
				if cands[u].t < cands[best].t {
					best = u
				}
			}
			cands[s], cands[best] = cands[best], cands[s]
		}
		relBest := 0
		for u := 1; u < len(cands); u++ {
			if cands[u].a > cands[relBest].a {
				relBest = u
			}
		}
		for s := 0; s < k; s++ {
			b.AddCandidate(j, cands[s].i, cands[s].t, cands[s].a)
		}
		if relBest >= k {
			b.AddCandidate(j, cands[relBest].i, cands[relBest].t, cands[relBest].a)
		}
	}
	sp, err := b.Build()
	if err != nil {
		// invariant: the generator emits one finite, de-duplicated
		// candidate set per task by construction.
		panic(err)
	}
	// Generous per-cluster capacity (25% headroom over perfect balance)
	// so reconciliation runs and always has a feasible target.
	capPer := (pt.N*5)/(4*pt.M) + 1
	sp.Cap = make([]int, pt.M)
	for i := range sp.Cap {
		sp.Cap[i] = capPer
	}
	return sp
}

// runScalePoint measures one configuration: per-round screen + hierarchical
// solve (reconcile + repair included), averaged over pt.Rounds rounds.
func runScalePoint(pt scalePoint, seed uint64) (scaleResult, error) {
	hw := matching.NewHierWorkspace()
	res := scaleResult{scalePoint: pt}
	var screenNs, solveNs int64
	for r := 0; r < pt.Rounds; r++ {
		t0 := time.Now()
		sp := scaleScreen(pt, seed, r)
		t1 := time.Now()
		out := matching.SolveHierarchical(sp, matching.HierOptions{
			Cells:  pt.Cells,
			Solve:  matching.SolveOptions{Iters: pt.SolveIters, Tol: pt.SolveTol},
			Repair: true,
		}, hw)
		t2 := time.Now()
		screenNs += t1.Sub(t0).Nanoseconds()
		solveNs += t2.Sub(t1).Nanoseconds()
		res.NNZ = sp.NNZ()
		if len(out.Assign) != pt.N {
			return res, fmt.Errorf("scale %s: assignment covers %d of %d tasks", pt.Name, len(out.Assign), pt.N)
		}
		if !out.Reconcile.Feasible {
			return res, fmt.Errorf("scale %s: reconciliation reported infeasible under %d-slack capacities", pt.Name, res.NNZ)
		}
		for j, i := range out.Assign {
			if i < 0 || i >= pt.M {
				return res, fmt.Errorf("scale %s: task %d assigned out-of-range cluster %d", pt.Name, j, i)
			}
		}
	}
	rounds := float64(pt.Rounds)
	totalNs := float64(screenNs + solveNs)
	res.ScreenMs = float64(screenNs) / rounds / 1e6
	res.SolveMs = float64(solveNs) / rounds / 1e6
	res.MeanRoundMs = totalNs / rounds / 1e6
	res.RoundsPerSec = rounds / (totalNs / 1e9)
	res.TasksPerSec = res.RoundsPerSec * float64(pt.N)
	return res, nil
}

// runScale executes the sweep named by mode: "smoke" (smallest point, one
// round), a point name, or "all" (every point plus the worker sweep).
// jsonPath, when non-empty, receives the scaleReport document.
func runScale(mode, jsonPath string) int {
	var pts []scalePoint
	switch mode {
	case "smoke":
		pt := scalePoints[0]
		pt.Rounds = 1
		pts = []scalePoint{pt}
	case "all":
		pts = scalePoints
	default:
		for _, pt := range scalePoints {
			if pt.Name == mode {
				pts = []scalePoint{pt}
			}
		}
		if pts == nil {
			fmt.Fprintf(os.Stderr, "-scale: unknown point %q (have smoke, all", mode)
			for _, pt := range scalePoints {
				fmt.Fprintf(os.Stderr, ", %s", pt.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			return 2
		}
	}

	const seed = uint64(20250807)
	rep := scaleReport{
		Description: "Production-dimension matching sweep: on-the-fly candidate screening into a CSR SparseProblem, hierarchical cell solves with capacity reconciliation, and bounded sparse repair. No dense M×N matrix is ever materialized (800 MB each at the 1000x100000 point).",
		Reproduce:   "scripts/bench_scale.sh  (or: go run ./cmd/mfcpbench -scale all -scale-json BENCH_scale.json)",
		Notes: []string{
			"mean_round_ms = screen_ms + solve_ms; solve_ms covers the hierarchical relaxed solve, cross-cell capacity reconciliation, and the bounded repair pass.",
			"Capacities give every cluster 25% headroom over perfect balance, so reconciliation runs every round and must end feasible.",
			"The worker sweep re-runs the " + scaleWorkerPoint + " point with parallel.SetWorkers pinned; cell solves are the parallel section. Scaling tracks the physical core count — on a single-core box the sweep measures sharding overhead, not speedup.",
		},
	}
	for _, pt := range pts {
		r, err := runScalePoint(pt, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rep.Points = append(rep.Points, r)
		fmt.Printf("scale %-12s  nnz=%-8d screen=%8.2fms  solve=%8.2fms  round=%8.2fms  %8.2f rounds/sec  %12.0f tasks/sec\n",
			r.Name, r.NNZ, r.ScreenMs, r.SolveMs, r.MeanRoundMs, r.RoundsPerSec, r.TasksPerSec)
	}

	if mode == "all" {
		var wp scalePoint
		for _, pt := range scalePoints {
			if pt.Name == scaleWorkerPoint {
				wp = pt
			}
		}
		for _, w := range []int{1, 2, 4, 8} {
			prev := parallel.SetWorkers(w)
			r, err := runScalePoint(wp, seed)
			parallel.SetWorkers(prev)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rep.WorkerSweep = append(rep.WorkerSweep, scaleWorkerResult{
				Workers: w, MeanRoundMs: r.MeanRoundMs, RoundsPerSec: r.RoundsPerSec,
			})
			fmt.Printf("scale %-12s  workers=%d  round=%8.2fms  %8.2f rounds/sec\n",
				wp.Name, w, r.MeanRoundMs, r.RoundsPerSec)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return 0
}
