// Production-dimension scale sweep. Experiments and micro-benchmarks run
// at the paper's evaluation sizes (M ≤ 8); this sweep runs the sparse
// matching pipeline at platform dimensions — up to 1000 clusters × 100 000
// tasks — where dense M×N matrices (800 MB each at the top point) must
// never exist. Screening therefore generates candidate scores on the fly
// (a counter-hash PRNG keyed by round/task/cluster) and feeds survivors
// straight into a reusable matching.ScreenWorkspace — sharded across
// parallel.Workers() and allocation-free after warmup; the solve is the
// hierarchical cell pipeline with capacity reconciliation and bounded
// sparse repair. Rounds are pipelined: round r+1's screen runs on a
// screener goroutine while round r's cells solve, double-buffered across
// two workspaces. The retired SparseBuilder-based screen is kept as the
// per-point serial baseline (serial_round_ms) so each BENCH_scale.json
// self-contains its own before/after comparison.
//
// `mfcpbench -scale all` runs every point plus the worker sweep and,
// with -scale-json, records BENCH_scale.json (scripts/bench_scale.sh /
// `make bench-scale`). `-scale smoke` is the CI gate: the smallest point,
// one round, structural assertions only (including workspace-vs-builder
// screen equivalence).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mfcp/internal/matching"
	"mfcp/internal/parallel"
)

// scalePoint is one production-dimension configuration of the sweep.
type scalePoint struct {
	Name string `json:"name"`
	M    int    `json:"m"`
	N    int    `json:"n"`
	// TopK candidates are kept per task out of a Cand-wide screened window.
	TopK int `json:"topk"`
	Cand int `json:"-"`
	// Cells is the hierarchical partition width.
	Cells int `json:"cells"`
	// Rounds per measurement; the big points run fewer.
	Rounds int `json:"rounds"`
	// SolveIters/SolveTol budget the per-cell relaxed solves.
	SolveIters int     `json:"solve_iters"`
	SolveTol   float64 `json:"solve_tol"`
}

var scalePoints = []scalePoint{
	{Name: "64x2000", M: 64, N: 2000, TopK: 8, Cand: 24, Cells: 2, Rounds: 20, SolveIters: 60, SolveTol: 1e-5},
	{Name: "256x20000", M: 256, N: 20000, TopK: 8, Cand: 24, Cells: 8, Rounds: 8, SolveIters: 60, SolveTol: 1e-5},
	{Name: "1000x100000", M: 1000, N: 100000, TopK: 8, Cand: 24, Cells: 16, Rounds: 3, SolveIters: 60, SolveTol: 1e-5},
}

// scaleMaxCand bounds the per-task candidate window so the screen body can
// keep its scratch in fixed stack arrays (no per-task allocation).
const scaleMaxCand = 64

// scaleEnv records where the numbers were measured — scaling claims are
// meaningless without the physical core count next to them.
type scaleEnv struct {
	CPUs       int `json:"cpus"`
	Gomaxprocs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// Warning flags host shapes that undermine the measurement (a
	// single-CPU host cannot show parallel speedup — the worker sweep
	// there measures sharding overhead only).
	Warning string `json:"warning,omitempty"`
}

func currentEnv() scaleEnv {
	e := scaleEnv{CPUs: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0), Workers: parallel.Workers()}
	if e.CPUs == 1 {
		e.Warning = "single-CPU host: worker counts above 1 measure sharding overhead, not parallel speedup"
	}
	return e
}

// scaleResult is one measured point of the sweep. The pipelined pass
// reports wall-clock MeanRoundMs (screen overlapped with solve) plus the
// per-phase breakdown; Serial* fields are the retired builder-based
// sequential path measured on the same instance stream.
type scaleResult struct {
	scalePoint
	Env scaleEnv `json:"environment"`
	NNZ int      `json:"nnz"`
	// Per-phase means over the pipelined pass. ScreenMs is screener-side
	// time and overlaps SolveMs; MeanRoundMs is end-to-end wall clock.
	ScreenMs    float64 `json:"screen_ms"`
	SolveMs     float64 `json:"solve_ms"`
	ReconcileMs float64 `json:"reconcile_ms"`
	RepairMs    float64 `json:"repair_ms"`
	MeanRoundMs float64 `json:"mean_round_ms"`
	// Serial baseline: SparseBuilder screen + solve, sequential, same seed.
	SerialScreenMs float64 `json:"serial_screen_ms"`
	SerialRoundMs  float64 `json:"serial_round_ms"`
	// Steady-state heap allocations of one workspace screen (single worker).
	ScreenAllocsPerRound uint64  `json:"screen_allocs_per_round"`
	RoundsPerSec         float64 `json:"rounds_per_sec"`
	TasksPerSec          float64 `json:"tasks_per_sec"`
}

// scaleWorkerResult is one (point, worker count) cell of the sweep.
type scaleWorkerResult struct {
	Point        string  `json:"point"`
	Workers      int     `json:"workers"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	ScreenMs     float64 `json:"screen_ms"`
	SolveMs      float64 `json:"solve_ms"`
	ReconcileMs  float64 `json:"reconcile_ms"`
	RepairMs     float64 `json:"repair_ms"`
	MeanRoundMs  float64 `json:"mean_round_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	Description string              `json:"description"`
	Reproduce   string              `json:"reproduce"`
	Env         scaleEnv            `json:"environment"`
	Points      []scaleResult       `json:"points"`
	WorkerSweep []scaleWorkerResult `json:"worker_sweep,omitempty"`
	Notes       []string            `json:"notes"`
}

// scaleMix is a splitmix64-style finalizer: the counter-based generator
// behind the synthetic score streams. Keyed hashing means any (round, task,
// cluster) score is computable independently — nothing is materialized.
func scaleMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// scaleU01 maps a hash to [0, 1).
func scaleU01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// scaleScores returns the synthetic predicted (time, reliability) for
// (cluster i, task j) in round r. Times mix a per-cluster speed factor
// with per-pair affinity so the top-k sets are cluster-discriminating;
// reliabilities sit around the γ=0.8 threshold so repair has real work.
func scaleScores(seed uint64, r, j, i int) (float64, float64) {
	h := scaleMix(seed ^ scaleMix(uint64(r)<<40^uint64(j)<<20^uint64(i)))
	speed := 0.5 + 1.5*scaleU01(scaleMix(seed^uint64(0xC1)<<56^uint64(i)))
	t := speed * (0.1 + 0.9*scaleU01(h))
	a := 0.55 + 0.45*scaleU01(scaleMix(h^0xA5))
	return t, a
}

// scaleWindow fills win with task j's Cand-wide pseudo-random window of
// distinct clusters (rejection sampling off the task's hash chain). The
// window depends only on (seed, j) — never on the round.
func scaleWindow(pt scalePoint, seed uint64, j int, win []int32) {
	nw := 0
	h := scaleMix(seed ^ uint64(0xB7)<<56 ^ uint64(j))
	for nw < pt.Cand {
		h = scaleMix(h)
		c := int32(h % uint64(pt.M))
		dup := false
		for _, w := range win[:nw] {
			if w == c {
				dup = true
				break
			}
		}
		if !dup {
			win[nw] = c
			nw++
		}
	}
}

// scaleKeep runs the screening decision over task j's scored window: the
// TopK fastest (partial selection sort, strict <) plus the most reliable,
// emitted cluster-sorted into (idx, ct, ca). win/wt/wa are clobbered.
func scaleKeep(pt scalePoint, win []int32, wt, wa []float64, idx []int32, ct, ca []float64) int {
	nw := len(win)
	k := pt.TopK
	if k > nw {
		k = nw
	}
	for s := 0; s < k; s++ {
		best := s
		for u := s + 1; u < nw; u++ {
			if wt[u] < wt[best] {
				best = u
			}
		}
		win[s], win[best] = win[best], win[s]
		wt[s], wt[best] = wt[best], wt[s]
		wa[s], wa[best] = wa[best], wa[s]
	}
	relBest := 0
	for u := 1; u < nw; u++ {
		if wa[u] > wa[relBest] {
			relBest = u
		}
	}
	cnt := k
	copy(idx, win[:k])
	copy(ct, wt[:k])
	copy(ca, wa[:k])
	if relBest >= k {
		idx[cnt], ct[cnt], ca[cnt] = win[relBest], wt[relBest], wa[relBest]
		cnt++
	}
	// Cluster-sort the slot (insertion sort over ≤ TopK+1 triples): the
	// workspace contract wants strictly increasing clusters per task.
	for s := 1; s < cnt; s++ {
		i, t, a := idx[s], ct[s], ca[s]
		u := s - 1
		for u >= 0 && idx[u] > i {
			idx[u+1], ct[u+1], ca[u+1] = idx[u], ct[u], ca[u]
			u--
		}
		idx[u+1], ct[u+1], ca[u+1] = i, t, a
	}
	return cnt
}

// scaleSelect screens task j from scratch — window generation, scoring,
// keep decision — exactly as the retired builder path did every round.
func scaleSelect(pt scalePoint, seed uint64, r, j int, idx []int32, ct, ca []float64) int {
	var win [scaleMaxCand]int32
	var wt, wa [scaleMaxCand]float64
	scaleWindow(pt, seed, j, win[:pt.Cand])
	for u := 0; u < pt.Cand; u++ {
		wt[u], wa[u] = scaleScores(seed, r, j, int(win[u]))
	}
	return scaleKeep(pt, win[:pt.Cand], wt[:pt.Cand], wa[:pt.Cand], idx, ct, ca)
}

// scaleCaps writes the generous per-cluster capacities (25% headroom over
// perfect balance) so reconciliation runs and always has a feasible target.
func scaleCaps(pt scalePoint, caps []int) []int {
	capPer := (pt.N*5)/(4*pt.M) + 1
	for i := range caps {
		caps[i] = capPer
	}
	return caps
}

// scaleScreenBuilder is the retired allocation-heavy screen, kept as the
// measured serial baseline: one SparseBuilder per round, O(nnz) fresh heap.
func scaleScreenBuilder(pt scalePoint, seed uint64, r int) *matching.SparseProblem {
	b := matching.NewSparseBuilder(pt.M, pt.N)
	var idx [scaleMaxCand]int32
	var ct, ca [scaleMaxCand]float64
	for j := 0; j < pt.N; j++ {
		cnt := scaleSelect(pt, seed, r, j, idx[:], ct[:], ca[:])
		for s := 0; s < cnt; s++ {
			b.AddCandidate(j, int(idx[s]), ct[s], ca[s])
		}
	}
	sp, err := b.Build()
	if err != nil {
		// invariant: the generator emits one finite, de-duplicated
		// candidate set per task by construction.
		panic(err)
	}
	sp.Cap = scaleCaps(pt, make([]int, pt.M))
	return sp
}

// scaleRunner owns one ScreenWorkspace and a pre-bound parallel fill body;
// per-round parameters travel through fields so the steady-state screen
// performs zero heap allocations. Round-invariant screening state — each
// task's candidate window and each cluster's speed factor — is computed
// once on the first screen and reused thereafter (the incremental half of
// the pipeline: the retired builder baseline regenerates both every
// round).
type scaleRunner struct {
	pt    scalePoint
	seed  uint64
	ws    *matching.ScreenWorkspace
	caps  []int
	round int
	body  func(lo, hi int)
	prep  func(lo, hi int)
	// wins holds task j's window at [j*Cand, (j+1)*Cand); speeds caches the
	// per-cluster speed factor of scaleScores. Both are (seed, pt)-pure.
	wins   []int32
	speeds []float64
	warm   bool
}

func newScaleRunner(pt scalePoint, seed uint64) *scaleRunner {
	if pt.Cand > scaleMaxCand {
		// invariant: scalePoints keep Cand within the fixed scratch width.
		panic("scale: Cand exceeds scaleMaxCand")
	}
	sc := &scaleRunner{pt: pt, seed: seed, ws: matching.NewScreenWorkspace(),
		caps:   scaleCaps(pt, make([]int, pt.M)),
		wins:   make([]int32, pt.N*pt.Cand),
		speeds: make([]float64, pt.M)}
	sc.body = sc.fillRange
	sc.prep = sc.prepRange
	return sc
}

// prepRange fills the round-invariant windows for tasks [lo, hi).
func (sc *scaleRunner) prepRange(lo, hi int) {
	for j := lo; j < hi; j++ {
		scaleWindow(sc.pt, sc.seed, j, sc.wins[j*sc.pt.Cand:(j+1)*sc.pt.Cand])
	}
}

func (sc *scaleRunner) fillRange(lo, hi int) {
	var win [scaleMaxCand]int32
	var wt, wa [scaleMaxCand]float64
	pt, seed, r := sc.pt, sc.seed, sc.round
	for j := lo; j < hi; j++ {
		w := sc.wins[j*pt.Cand : (j+1)*pt.Cand]
		copy(win[:], w) // scaleKeep permutes its window in place
		for u := 0; u < pt.Cand; u++ {
			i := int(w[u])
			// scaleScores with the speed factor served from the cache;
			// identical arithmetic, so identical float64 results.
			h := scaleMix(seed ^ scaleMix(uint64(r)<<40^uint64(j)<<20^uint64(i)))
			wt[u] = sc.speeds[i] * (0.1 + 0.9*scaleU01(h))
			wa[u] = 0.55 + 0.45*scaleU01(scaleMix(h^0xA5))
		}
		idx, ct, ca := sc.ws.Slot(j)
		sc.ws.Commit(j, scaleKeep(pt, win[:pt.Cand], wt[:pt.Cand], wa[:pt.Cand], idx, ct, ca))
	}
}

// screen builds round r's sparse problem in the workspace: parallel
// per-task candidate scoring into slots (windows cached across rounds),
// then the two-pass CSR/CSC assembly. The result aliases the workspace
// until the next screen.
func (sc *scaleRunner) screen(r int) (*matching.SparseProblem, error) {
	if !sc.warm {
		for i := 0; i < sc.pt.M; i++ {
			sc.speeds[i] = 0.5 + 1.5*scaleU01(scaleMix(sc.seed^uint64(0xC1)<<56^uint64(i)))
		}
		parallel.ForChunked(sc.pt.N, 512, sc.prep)
		sc.warm = true
	}
	sc.round = r
	sc.ws.Begin(sc.pt.M, sc.pt.N, sc.pt.TopK+1)
	parallel.ForChunked(sc.pt.N, 512, sc.body)
	sp, err := sc.ws.Finish()
	if err != nil {
		return nil, err
	}
	sp.Cap = sc.caps
	return sp, nil
}

// scaleCheckAssign runs the structural assertions every measured round must
// satisfy.
func scaleCheckAssign(pt scalePoint, out matching.HierResult, nnz int) error {
	if len(out.Assign) != pt.N {
		return fmt.Errorf("scale %s: assignment covers %d of %d tasks", pt.Name, len(out.Assign), pt.N)
	}
	if !out.Reconcile.Feasible {
		return fmt.Errorf("scale %s: reconciliation reported infeasible under %d-slack capacities", pt.Name, nnz)
	}
	for j, i := range out.Assign {
		if i < 0 || i >= pt.M {
			return fmt.Errorf("scale %s: task %d assigned out-of-range cluster %d", pt.Name, j, i)
		}
	}
	return nil
}

// scaleEquivCheck asserts the workspace screen reproduces the builder
// screen bit-for-bit (round 0): same CSR, same CSC, same values.
func scaleEquivCheck(pt scalePoint, seed uint64, sc *scaleRunner) error {
	want := scaleScreenBuilder(pt, seed, 0)
	got, err := sc.screen(0)
	if err != nil {
		return fmt.Errorf("scale %s: workspace screen: %w", pt.Name, err)
	}
	if !reflect.DeepEqual(got.RowStart, want.RowStart) || !reflect.DeepEqual(got.ColIdx, want.ColIdx) ||
		!reflect.DeepEqual(got.T, want.T) || !reflect.DeepEqual(got.A, want.A) ||
		!reflect.DeepEqual(got.ColStart, want.ColStart) || !reflect.DeepEqual(got.ColEntry, want.ColEntry) ||
		!reflect.DeepEqual(got.ColRow, want.ColRow) {
		return fmt.Errorf("scale %s: workspace screen diverged from the builder screen", pt.Name)
	}
	return nil
}

// scaleMeasureAllocs reports the steady-state heap allocations of one
// workspace screen, measured at a single worker (the parallel fork itself
// allocates goroutine bookkeeping; the per-task screen must not).
func scaleMeasureAllocs(sc *scaleRunner) (uint64, error) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	// Warm both rounds: capacities grow monotonically with the largest nnz
	// seen, so re-screening a warmed round is the steady state.
	for _, r := range []int{0, 1} {
		if _, err := sc.screen(r); err != nil {
			return 0, err
		}
	}
	// Average over several runs (testing.AllocsPerRun's technique): stray
	// runtime-internal allocations land on one run, not all of them, so the
	// floored mean of a steady-state screen is exact.
	const runs = 10
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := sc.screen(1); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return (after.Mallocs - before.Mallocs) / runs, nil
}

// hierOpts is the solve configuration for one point.
func hierOpts(pt scalePoint) matching.HierOptions {
	return matching.HierOptions{
		Cells:  pt.Cells,
		Solve:  matching.SolveOptions{Iters: pt.SolveIters, Tol: pt.SolveTol},
		Repair: true,
	}
}

// scalePhases accumulates per-phase nanoseconds over a pass.
type scalePhases struct {
	screen, solve, reconcile, repair int64
}

// runScalePipelined measures the pipelined pass: a screener goroutine
// producing round r+1's problem (double-buffered across two workspaces)
// while the main goroutine runs round r's hierarchical solve. Returns the
// wall-clock nanoseconds of the whole pass plus the phase breakdown.
func runScalePipelined(pt scalePoint, seed uint64, scA, scB *scaleRunner) (int64, scalePhases, int, error) {
	hw := matching.NewHierWorkspace()
	var ph scalePhases
	nnz := 0

	type screened struct {
		r  int
		sp *matching.SparseProblem
		sc *scaleRunner
		ns int64
	}
	// Steady state only: pay the runners' one-time window/speed prep and
	// workspace growth outside the clock, and start from a settled heap so
	// a prior pass's garbage is not collected on this pass's time.
	for _, sc := range []*scaleRunner{scA, scB} {
		if _, err := sc.screen(0); err != nil {
			return 0, ph, 0, err
		}
	}
	runtime.GC()

	free := make(chan *scaleRunner, 2)
	free <- scA
	free <- scB
	ch := make(chan screened, 2)
	var screenErr error
	start := time.Now()
	go func() {
		defer close(ch)
		for r := 0; r < pt.Rounds; r++ {
			sc := <-free
			t0 := time.Now()
			sp, err := sc.screen(r)
			if err != nil {
				screenErr = err
				return
			}
			ch <- screened{r, sp, sc, time.Since(t0).Nanoseconds()}
		}
	}()
	for it := range ch {
		out := matching.SolveHierarchical(it.sp, hierOpts(pt), hw)
		nnz = it.sp.NNZ()
		if err := scaleCheckAssign(pt, out, nnz); err != nil {
			return 0, ph, 0, err
		}
		ph.screen += it.ns
		ph.solve += out.Timings.SolveNs
		ph.reconcile += out.Timings.ReconcileNs
		ph.repair += out.Timings.RepairNs
		free <- it.sc
	}
	wall := time.Since(start).Nanoseconds()
	if screenErr != nil {
		return 0, ph, 0, screenErr
	}
	return wall, ph, nnz, nil
}

// runScalePoint measures one configuration: the builder-screen serial
// baseline, the workspace/pipelined pass, the screen allocation count, and
// the round-0 equivalence check between the two screens.
func runScalePoint(pt scalePoint, seed uint64) (scaleResult, error) {
	res := scaleResult{scalePoint: pt, Env: currentEnv()}
	scA, scB := newScaleRunner(pt, seed), newScaleRunner(pt, seed)
	if err := scaleEquivCheck(pt, seed, scA); err != nil {
		return res, err
	}
	allocs, err := scaleMeasureAllocs(scA)
	if err != nil {
		return res, err
	}
	res.ScreenAllocsPerRound = allocs

	// Serial baseline: builder screen then solve, strictly sequential.
	// The builder allocates per round by design (that is the baseline being
	// measured), but start it from a settled heap too.
	runtime.GC()
	hw := matching.NewHierWorkspace()
	var serialScreenNs, serialSolveNs int64
	for r := 0; r < pt.Rounds; r++ {
		t0 := time.Now()
		sp := scaleScreenBuilder(pt, seed, r)
		t1 := time.Now()
		out := matching.SolveHierarchical(sp, hierOpts(pt), hw)
		serialScreenNs += t1.Sub(t0).Nanoseconds()
		serialSolveNs += time.Since(t1).Nanoseconds()
		if err := scaleCheckAssign(pt, out, sp.NNZ()); err != nil {
			return res, err
		}
	}

	wall, ph, nnz, err := runScalePipelined(pt, seed, scA, scB)
	if err != nil {
		return res, err
	}
	res.NNZ = nnz
	rounds := float64(pt.Rounds)
	res.ScreenMs = float64(ph.screen) / rounds / 1e6
	res.SolveMs = float64(ph.solve) / rounds / 1e6
	res.ReconcileMs = float64(ph.reconcile) / rounds / 1e6
	res.RepairMs = float64(ph.repair) / rounds / 1e6
	res.MeanRoundMs = float64(wall) / rounds / 1e6
	res.SerialScreenMs = float64(serialScreenNs) / rounds / 1e6
	res.SerialRoundMs = float64(serialScreenNs+serialSolveNs) / rounds / 1e6
	res.RoundsPerSec = rounds / (float64(wall) / 1e9)
	res.TasksPerSec = res.RoundsPerSec * float64(pt.N)
	return res, nil
}

// parseWorkerList parses the -scale-workers comma list.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-scale-workers: bad worker count %q", f)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale-workers: empty list")
	}
	return out, nil
}

// runScale executes the sweep named by mode: "smoke" (smallest point, one
// round), a point name, or "all" (every point plus the worker sweep over
// workersCSV). jsonPath, when non-empty, receives the scaleReport document.
func runScale(mode, jsonPath, workersCSV string) int {
	workerList, err := parseWorkerList(workersCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if runtime.NumCPU() == 1 {
		for _, w := range workerList {
			if w > 1 {
				fmt.Fprintln(os.Stderr, "warning: -scale-workers includes counts above 1 on a single-CPU host; the sweep will measure sharding overhead, not parallel speedup (stamped into the JSON environment block)")
				break
			}
		}
	}
	var pts []scalePoint
	switch mode {
	case "smoke":
		pt := scalePoints[0]
		pt.Rounds = 1
		pts = []scalePoint{pt}
	case "all":
		pts = scalePoints
	default:
		for _, pt := range scalePoints {
			if pt.Name == mode {
				pts = []scalePoint{pt}
			}
		}
		if pts == nil {
			fmt.Fprintf(os.Stderr, "-scale: unknown point %q (have smoke, all", mode)
			for _, pt := range scalePoints {
				fmt.Fprintf(os.Stderr, ", %s", pt.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			return 2
		}
	}

	const seed = uint64(20250807)
	rep := scaleReport{
		Description: "Production-dimension matching sweep: on-the-fly parallel candidate screening into a reusable CSR/CSC ScreenWorkspace (allocation-free after warmup), round r+1's screen pipelined against round r's hierarchical cell solves, capacity reconciliation, and bounded sparse repair. No dense M×N matrix is ever materialized (800 MB each at the 1000x100000 point).",
		Reproduce:   "scripts/bench_scale.sh  (or: go run ./cmd/mfcpbench -scale all -scale-json BENCH_scale.json)",
		Env:         currentEnv(),
		Notes: []string{
			"mean_round_ms is wall clock per round with the screen overlapped against the solve; screen_ms is screener-side time and can exceed the wall-clock gap it adds. solve_ms/reconcile_ms/repair_ms are the hierarchical solve's internal phases.",
			"serial_round_ms re-measures the retired SparseBuilder screen plus a sequential solve on the same instance stream — the single-worker baseline the pipelined numbers are compared against.",
			"Capacities give every cluster 25% headroom over perfect balance, so reconciliation runs every round and must end feasible.",
			"The worker sweep re-runs every selected point with parallel.SetWorkers and GOMAXPROCS pinned per cell; the screen shards per task block and the cell solves per cell. Speedup tracks the physical core count in `environment` — with more workers than CPUs the sweep measures sharding overhead, not speedup.",
			"screen_allocs_per_round is the heap-allocation count of one steady-state workspace screen, measured at a single worker; 0 means the screen path is allocation-free once warm.",
		},
	}
	for _, pt := range pts {
		r, err := runScalePoint(pt, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if mode == "smoke" && r.ScreenAllocsPerRound != 0 {
			fmt.Fprintf(os.Stderr, "scale %s: steady-state screen allocated %d times, want 0\n", r.Name, r.ScreenAllocsPerRound)
			return 1
		}
		rep.Points = append(rep.Points, r)
		fmt.Printf("scale %-12s  nnz=%-8d screen=%8.2fms  solve=%8.2fms  round=%8.2fms  serial=%8.2fms  allocs=%d  %8.2f rounds/sec  %12.0f tasks/sec\n",
			r.Name, r.NNZ, r.ScreenMs, r.SolveMs, r.MeanRoundMs, r.SerialRoundMs, r.ScreenAllocsPerRound, r.RoundsPerSec, r.TasksPerSec)
	}

	if mode == "all" {
		for _, pt := range pts {
			for _, w := range workerList {
				prevW := parallel.SetWorkers(w)
				prevP := runtime.GOMAXPROCS(w)
				scA, scB := newScaleRunner(pt, seed), newScaleRunner(pt, seed)
				wall, ph, _, err := runScalePipelined(pt, seed, scA, scB)
				runtime.GOMAXPROCS(prevP)
				parallel.SetWorkers(prevW)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				rounds := float64(pt.Rounds)
				wr := scaleWorkerResult{
					Point:        pt.Name,
					Workers:      w,
					Gomaxprocs:   w,
					ScreenMs:     float64(ph.screen) / rounds / 1e6,
					SolveMs:      float64(ph.solve) / rounds / 1e6,
					ReconcileMs:  float64(ph.reconcile) / rounds / 1e6,
					RepairMs:     float64(ph.repair) / rounds / 1e6,
					MeanRoundMs:  float64(wall) / rounds / 1e6,
					RoundsPerSec: rounds / (float64(wall) / 1e9),
				}
				rep.WorkerSweep = append(rep.WorkerSweep, wr)
				fmt.Printf("scale %-12s  workers=%d  screen=%8.2fms  solve=%8.2fms  round=%8.2fms  %8.2f rounds/sec\n",
					pt.Name, w, wr.ScreenMs, wr.SolveMs, wr.MeanRoundMs, wr.RoundsPerSec)
			}
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return 0
}
