// End-to-end training benchmarks. These exercise the full prediction hot
// path — scenario features through MLP forward/backward into the optimizer
// (BenchmarkPretrain) and additionally through the matching layer and the
// zeroth-order gradients (BenchmarkTrainMFCP). BENCH_train.json records the
// before/after numbers for the fast-predictor-pipeline rewrite; reproduce
// with `make bench-train`,
//
//	go test ./cmd/mfcpbench -run '^$' -bench 'Pretrain|TrainMFCP' -benchmem
//
// or, without the test harness, `mfcpbench -bench 'Pretrain|TrainMFCP'`.
// The bodies live in benchmarks.go so the binary's -bench flag runs the
// exact same code.
package main

import (
	"fmt"
	"testing"

	"mfcp/internal/core"
)

// BenchmarkPretrain measures the MSE warm start — the entirety of the
// two-stage baseline's learning: 2M networks fitting measured labels.
func BenchmarkPretrain(b *testing.B) { benchPretrain(b) }

// BenchmarkTrainMFCP measures the full MFCP-FG pipeline on a reduced budget:
// MSE warm start plus the end-to-end regret phase (per-epoch relaxed solves,
// zeroth-order gradients, per-cluster backprop, validation rounds).
func BenchmarkTrainMFCP(b *testing.B) { benchTrainMFCP(b) }

// BenchmarkBackendPretrain sweeps supervised MSE training across every
// registered predictor backend family on the identical budget — the
// backend comparison recorded in BENCH_train.json.
func BenchmarkBackendPretrain(b *testing.B) {
	for _, name := range core.BackendNames() {
		b.Run(name, func(b *testing.B) { benchBackendPretrain(b, name) })
	}
}

// BenchmarkBackendPredict sweeps the steady-state batched forward
// (PredictInto, warm workspace, 64-task round) across every registered
// backend family; all of them hold 0 allocs/op.
func BenchmarkBackendPredict(b *testing.B) {
	for _, name := range core.BackendNames() {
		b.Run(name, func(b *testing.B) { benchBackendPredict(b, name) })
	}
}

// BenchmarkPlatformThroughput sweeps the concurrent serving engine over
// worker counts, bare and with a live metrics registry attached, reporting
// rounds/sec and tasks/sec (BENCH_platform.json records the curve and the
// instrumentation overhead; reproduce with `make bench-platform`). The
// engines are built once — the sweep measures serving, not training.
func BenchmarkPlatformThroughput(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchPlatformThroughput(b, w, false)
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d/telemetry", w), func(b *testing.B) {
			benchPlatformThroughput(b, w, true)
		})
	}
}
