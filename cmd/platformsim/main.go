// Command platformsim runs the computing resource exchange platform
// end-to-end: profiling, predictor training, then live allocation rounds
// with simulated execution and failures.
//
// Usage:
//
//	platformsim -method mfcp-fg -rounds 100
//	platformsim -method tsm -setting C -parallel -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mfcp"
	"mfcp/internal/platform"
	"mfcp/internal/workload"
)

func main() {
	var (
		method    = flag.String("method", "mfcp-fg", "tam|tsm|ucb|mfcp-ad|mfcp-fg")
		setting   = flag.String("setting", "A", "cluster setting A|B|C")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		pool      = flag.Int("pool", 160, "task pool size")
		rounds    = flag.Int("rounds", 50, "allocation rounds to simulate")
		roundSize = flag.Int("n", 5, "tasks per round")
		parallel  = flag.Bool("parallel", false, "parallel task execution (§3.4)")
		verbose   = flag.Bool("v", false, "print every round")
	)
	flag.Parse()

	rep, err := mfcp.RunPlatform(platform.Config{
		Scenario: workload.Config{
			Setting:  mfcp.Setting(strings.ToUpper(*setting)),
			PoolSize: *pool,
			Seed:     *seed,
		},
		Method:    platform.MethodName(*method),
		Rounds:    *rounds,
		RoundSize: *roundSize,
		Parallel:  *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *verbose {
		for _, r := range rep.Rounds {
			fmt.Printf("round %3d  assign=%v  regret=%+.3f  rel=%.3f  util=%.3f  makespan=%.0fs  ok=%.0f%%\n",
				r.Round, r.Assignment, r.Eval.Regret, r.Eval.Reliability, r.Eval.Utilization,
				r.Execution.Makespan, 100*r.Execution.SuccessRate)
		}
	}
	fmt.Printf("platform simulation: method=%s setting=%s rounds=%d N=%d parallel=%v\n",
		rep.Method, strings.ToUpper(*setting), *rounds, *roundSize, *parallel)
	fmt.Printf("  mean regret        %.4f\n", rep.MeanRegret)
	fmt.Printf("  mean reliability   %.4f\n", rep.MeanReliability)
	fmt.Printf("  mean utilization   %.4f\n", rep.MeanUtilization)
	fmt.Printf("  task success rate  %.1f%%\n", 100*rep.MeanSuccessRate)
	fmt.Printf("  simulated compute  %.1f cluster-hours over %.1f wall-clock hours\n",
		rep.TotalBusySeconds/3600, rep.TotalMakespanSeconds/3600)
}
