// Command platformsim runs the computing resource exchange platform
// end-to-end: profiling, predictor training, then live allocation rounds
// with simulated execution and failures. With -online the predictors also
// refit periodically from realized executions; with -metrics-addr the run
// exposes live Prometheus-text /metrics, expvar, and pprof endpoints.
//
// SIGINT/SIGTERM interrupt the run cooperatively: the in-flight window
// drains, a final checkpoint is saved (with -checkpoint), the partial
// report and telemetry digest print, and the process exits 130. A second
// signal kills it immediately.
//
// Usage:
//
//	platformsim -method mfcp-fg -rounds 100
//	platformsim -method tsm -setting C -parallel -v
//	platformsim -method tsm -backend ensemble -risk 0.5 -online
//	platformsim -method tsm -online -metrics-addr 127.0.0.1:9090 -hold
//	platformsim -method tsm -online -checkpoint run.ckpt   # ^C, then:
//	platformsim -method tsm -online -checkpoint run.ckpt -resume run.ckpt
//	curl -s http://127.0.0.1:9090/metrics | grep mfcp_
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mfcp"
	"mfcp/internal/embed"
	"mfcp/internal/obs"
	"mfcp/internal/platform"
	"mfcp/internal/workload"
)

func main() {
	var (
		method      = flag.String("method", "mfcp-fg", "tam|tsm|ucb|mfcp-ad|mfcp-fg")
		backend     = flag.String("backend", "", "predictor backend family: mlp|ensemble|table (default mlp; non-mlp needs -method tsm)")
		risk        = flag.Float64("risk", 0, "risk aversion κ: serve T̂=μ+κσ, Â=μ−κσ (needs -backend ensemble)")
		setting     = flag.String("setting", "A", "cluster setting A|B|C")
		seed        = flag.Uint64("seed", 1, "scenario seed")
		pool        = flag.Int("pool", 160, "task pool size")
		rounds      = flag.Int("rounds", 50, "allocation rounds to simulate")
		roundSize   = flag.Int("n", 5, "tasks per round")
		parallel    = flag.Bool("parallel", false, "parallel task execution (§3.4)")
		verbose     = flag.Bool("v", false, "print every round")
		online      = flag.Bool("online", false, "refit predictors from live observations (tsm/mfcp-* only)")
		refitEvery  = flag.Int("refit-every", 10, "rounds per refit window (with -online)")
		asyncRefit  = flag.Bool("async-refit", false, "train refits in the background (with -online)")
		checkpoint  = flag.String("checkpoint", "", "save a resumable checkpoint here periodically and on interrupt (with -online)")
		ckEvery     = flag.Int("checkpoint-every", 1, "refit windows between periodic checkpoint saves")
		resume      = flag.String("resume", "", "resume from a checkpoint file saved by -checkpoint (with -online)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
		hold        = flag.Bool("hold", false, "keep serving the metrics endpoint after the run until interrupted")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if (*checkpoint != "" || *resume != "") && !*online {
		fail(errors.New("-checkpoint and -resume require -online (only the online loop has resumable state)"))
	}

	// First SIGINT/SIGTERM cancels the run cooperatively; a second one
	// restores default handling, so it kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default handling so a second signal kills at once
	}()

	// Telemetry is always collected (it is allocation-free and does not
	// perturb the trajectory); -metrics-addr additionally serves it live.
	reg := obs.NewRegistry()
	embed.RegisterMetrics(reg)
	var srv *obs.Server
	if *metricsAddr != "" {
		var err error
		srv, err = obs.Serve(*metricsAddr, reg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "[metrics on http://%s/metrics, pprof on /debug/pprof/]\n", srv.Addr())
	}
	closeServer := func() {
		if srv == nil {
			return
		}
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(sctx)
		scancel()
		srv = nil
	}
	defer closeServer()

	cfg := platform.Config{
		Scenario: workload.Config{
			Setting:  mfcp.Setting(strings.ToUpper(*setting)),
			PoolSize: *pool,
			Seed:     *seed,
		},
		Method:    platform.MethodName(*method),
		Backend:   *backend,
		Rounds:    *rounds,
		RoundSize: *roundSize,
		Parallel:  *parallel,
		Telemetry: reg,
	}
	cfg.Match.RiskAversion = *risk

	var rep *mfcp.PlatformReport
	var orep *mfcp.OnlineReport
	var runErr error
	if *online {
		ocfg := mfcp.OnlineConfig{
			Config:          cfg,
			RefitEvery:      *refitEvery,
			AsyncRefit:      *asyncRefit,
			CheckpointPath:  *checkpoint,
			CheckpointEvery: *ckEvery,
		}
		if *resume != "" {
			ck, err := mfcp.LoadCheckpoint(*resume)
			if err != nil {
				fail(fmt.Errorf("resume: %w", err))
			}
			ocfg.Resume = ck
			fmt.Fprintf(os.Stderr, "[resuming at round %d (%d refits done)]\n", ck.Round, ck.Refits)
		}
		orep, runErr = mfcp.RunPlatformOnlineCtx(ctx, ocfg)
		if orep != nil {
			rep = &orep.Report
		}
	} else {
		rep, runErr = mfcp.RunPlatformCtx(ctx, cfg)
	}
	interrupted := errors.Is(runErr, mfcp.ErrCanceled)
	if runErr != nil && !interrupted {
		fail(runErr)
	}
	if runErr != nil && rep == nil {
		// Canceled before anything was served (e.g. during training).
		fmt.Fprintln(os.Stderr, "interrupted before serving; nothing to report")
		closeServer()
		os.Exit(130)
	}

	if *verbose {
		for _, r := range rep.Rounds {
			fmt.Printf("round %3d  assign=%v  regret=%+.3f  rel=%.3f  util=%.3f  makespan=%.0fs  ok=%.0f%%\n",
				r.Round, r.Assignment, r.Eval.Regret, r.Eval.Reliability, r.Eval.Utilization,
				r.Execution.Makespan, 100*r.Execution.SuccessRate)
		}
	}
	fmt.Printf("platform simulation: method=%s setting=%s rounds=%d N=%d parallel=%v online=%v\n",
		rep.Method, strings.ToUpper(*setting), *rounds, *roundSize, *parallel, *online)
	if interrupted {
		fmt.Printf("  INTERRUPTED after %d rounds (means cover the served prefix)\n", len(rep.Rounds))
	}
	if orep != nil && orep.ResumedAt > 0 {
		fmt.Printf("  resumed at round   %d\n", orep.ResumedAt)
	}
	fmt.Printf("  mean regret        %.4f\n", rep.MeanRegret)
	fmt.Printf("  mean reliability   %.4f\n", rep.MeanReliability)
	fmt.Printf("  mean utilization   %.4f\n", rep.MeanUtilization)
	fmt.Printf("  task success rate  %.1f%%\n", 100*rep.MeanSuccessRate)
	fmt.Printf("  simulated compute  %.1f cluster-hours over %.1f wall-clock hours\n",
		rep.TotalBusySeconds/3600, rep.TotalMakespanSeconds/3600)
	// Route breakdown straight from the engine's labeled counters:
	// registration is idempotent, so this lookup binds to the same children
	// the engine incremented (the three routes are disjoint).
	routes := reg.CounterVec("mfcp_rounds_by_route_total", "rounds served by matching route", "route")
	fmt.Printf("  rounds by route    dense=%d sparse=%d autosparse=%d\n",
		routes.With("dense").Value(), routes.With("sparse").Value(), routes.With("autosparse").Value())
	if orep != nil {
		fmt.Printf("  refits             %d (ring drops %d)\n", orep.Refits, orep.RingDropped)
	}
	if interrupted && *checkpoint != "" {
		fmt.Printf("  checkpoint saved   %s (resume with -resume %s)\n", *checkpoint, *checkpoint)
	}

	// One-shot telemetry digest on exit, endpoint or not.
	fmt.Println("--- telemetry ---")
	if err := reg.WriteSummary(os.Stdout); err != nil {
		fail(err)
	}

	if interrupted {
		closeServer()
		os.Exit(130)
	}

	if *hold && srv != nil {
		fmt.Fprintf(os.Stderr, "[holding metrics endpoint on %s; interrupt to exit]\n", srv.Addr())
		<-ctx.Done()
	}
}
