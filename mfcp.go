// Package mfcp is a from-scratch Go implementation of "Joint Prediction and
// Matching for Computing Resource Exchange Platforms" (ICPP 2025): the MFCP
// framework that trains cluster performance predictors end-to-end through
// the downstream cluster–task matching optimization, minimizing decision
// regret instead of prediction error.
//
// The package is a thin, stable facade over the internal implementation:
//
//   - NewScenario builds a simulated exchange-platform environment — a
//     heterogeneous cluster fleet, a pool of deep-learning tasks modeled as
//     operator DAGs, frozen GNN-style feature embeddings, and noisy
//     profiling measurements alongside hidden ground truth.
//   - Train fits MFCP predictors (analytical-differentiation or
//     zeroth-order variant); NewTAM / NewTSM / NewUCB build the paper's
//     baselines on the same data.
//   - Match solves the cluster–task matching problem (smoothed makespan
//     objective with a log-barrier reliability constraint) for any
//     predicted cost matrices; Evaluate scores an assignment against the
//     hidden ground truth with the paper's three metrics.
//   - Table1 / Figure4 / Figure5 / Table2 regenerate the paper's
//     evaluation; RunPlatform simulates the full allocation loop.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package mfcp

import (
	"context"

	"mfcp/internal/baselines"
	"mfcp/internal/cluster"
	"mfcp/internal/core"
	"mfcp/internal/experiments"
	"mfcp/internal/mat"
	"mfcp/internal/matching"
	"mfcp/internal/metrics"
	"mfcp/internal/mfcperr"
	"mfcp/internal/platform"
	"mfcp/internal/workload"
)

// Re-exported building blocks. Aliases keep one canonical definition while
// giving users a single import.
type (
	// Scenario is a fully materialized experimental environment: fleet,
	// task pool, features, measurements, and hidden ground truth.
	Scenario = workload.Scenario
	// ScenarioConfig parameterizes scenario construction.
	ScenarioConfig = workload.Config
	// Setting selects one of the paper's cluster fleets (A, B, C).
	Setting = cluster.Setting
	// MatchConfig bundles the matching hyperparameters (γ, β, λ, ...).
	MatchConfig = core.MatchConfig
	// TrainerConfig parameterizes MFCP training.
	TrainerConfig = core.Config
	// Trainer is a trained MFCP model.
	Trainer = core.Trainer
	// PredictorSet holds per-cluster time and reliability networks.
	PredictorSet = core.PredictorSet
	// Matrix is the dense matrix type used for cost matrices (M×N).
	Matrix = mat.Dense
	// Eval is one assignment's ground-truth scorecard (regret,
	// reliability, utilization).
	Eval = metrics.Eval
	// Table is a rendered experiment result.
	Table = experiments.Table
	// ExperimentConfig holds the experiment harness knobs.
	ExperimentConfig = experiments.Config
	// MethodResult aggregates one method's metrics across replicates.
	MethodResult = experiments.MethodResult
	// PlatformConfig parameterizes an end-to-end platform simulation.
	PlatformConfig = platform.Config
	// PlatformReport aggregates a platform simulation.
	PlatformReport = platform.Report
)

// Fleet settings of the paper's evaluation (§4.3).
const (
	SettingA = cluster.SettingA
	SettingB = cluster.SettingB
	SettingC = cluster.SettingC
)

// Trainer kinds (§3.3–3.4).
const (
	// KindAD is MFCP with analytical KKT differentiation (convex setting).
	KindAD = core.AD
	// KindFG is MFCP with zeroth-order forward gradients (Algorithm 2).
	KindFG = core.FG
	// KindUR is MFCP with unrolled differentiation (backprop through the
	// solver iterations) — an extension beyond the paper's two variants.
	KindUR = core.UR
)

// Method is anything that predicts performance matrices (T̂, Â) for a round
// of task indices: MFCP trainers, baselines, or user implementations.
type Method = experiments.Method

// NewScenario builds a simulation environment. Construction is
// deterministic in cfg.Seed.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) { return workload.New(cfg) }

// ScenarioFromData builds a matrices-only Scenario from externally supplied
// measurements — the path for operators with real profiling data. features
// is tasks×dim, measT and measA are clusters×tasks. Simulator-backed
// features (platform runs, onboarding, drift) are unavailable.
func ScenarioFromData(features, measT, measA *Matrix, seed uint64) (*Scenario, error) {
	return workload.FromData(features, measT, measA, seed)
}

// LoadScenarioCSV loads a dataset in cmd/datagen's CSV layout
// (features.csv + performance.csv under dir) as an external Scenario.
func LoadScenarioCSV(dir string, seed uint64) (*Scenario, error) {
	return workload.LoadCSV(dir, seed)
}

// Train fits MFCP on the scenario's training task indices.
func Train(s *Scenario, train []int, cfg TrainerConfig) *Trainer {
	return core.Train(s, train, cfg)
}

// TrainCtx is Train with configuration validation and cooperative
// cancellation: a bad configuration returns an ErrBadConfig-wrapped error
// instead of panicking, and canceling the context returns the partial
// trainer (Trainer.Stopped names the interrupted phase) alongside an
// ErrCanceled-wrapped error.
func TrainCtx(ctx context.Context, s *Scenario, train []int, cfg TrainerConfig) (*Trainer, error) {
	return core.TrainCtx(ctx, s, train, cfg)
}

// Sentinel errors of the run lifecycle, for errors.Is dispatch. Every error
// the facade's fallible functions return wraps one of these.
var (
	// ErrBadShape reports matrix dimensionality that cannot form a valid problem.
	ErrBadShape = mfcperr.ErrBadShape
	// ErrBadConfig reports a hyperparameter outside its admissible range.
	ErrBadConfig = mfcperr.ErrBadConfig
	// ErrInfeasible reports an instance no configuration could satisfy.
	ErrInfeasible = mfcperr.ErrInfeasible
	// ErrNotConverged reports an optimizer that exhausted its budget.
	ErrNotConverged = mfcperr.ErrNotConverged
	// ErrCanceled reports cooperative cancellation; partial results returned
	// alongside it are valid prefixes.
	ErrCanceled = mfcperr.ErrCanceled
	// ErrCorruptCheckpoint reports a checkpoint file that failed validation.
	ErrCorruptCheckpoint = mfcperr.ErrCorruptCheckpoint
)

// Checkpoint is a resumable snapshot of a training or serving run.
type Checkpoint = core.Checkpoint

// SaveCheckpoint atomically writes a checkpoint file (temp file + rename).
func SaveCheckpoint(path string, c *Checkpoint) error { return core.SaveCheckpoint(path, c) }

// LoadCheckpoint reads and validates a checkpoint file; corruption returns
// an ErrCorruptCheckpoint-wrapped error.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }

// NewTAM builds the task-agnostic matching baseline.
func NewTAM(s *Scenario, train []int) Method { return baselines.NewTAM(s, train) }

// NewTSM builds the two-stage (MSE predict-then-match) baseline.
func NewTSM(s *Scenario, train []int, hidden []int, epochs int) Method {
	return baselines.NewTSM(s, train, hidden, epochs)
}

// PretrainPredictors trains a predictor set by plain MSE (equation 1) —
// the two-stage baseline's entire learning. Hand the result to NewTSMFrom
// and to TrainerConfig.Warm to give TSM and MFCP the identical starting
// point, so their comparison isolates the regret-descent phase.
func PretrainPredictors(s *Scenario, train []int, hidden []int, epochs int) *PredictorSet {
	stream := s.Stream("shared-pretrain")
	set := core.NewPredictorSet(s.M(), s.Features.Cols, hidden, stream.Split("init"))
	core.PretrainMSE(set, s, train, epochs, stream.Split("train"))
	return set
}

// NewTSMFrom wraps an existing predictor set as the two-stage baseline.
func NewTSMFrom(s *Scenario, set *PredictorSet) Method {
	return baselines.NewTSMFromSet(s, set)
}

// NewUCB builds the confidence-bound baseline with default ensembles.
func NewUCB(s *Scenario, train []int) Method {
	return baselines.NewUCB(s, train, baselines.UCBConfig{})
}

// NewOracle returns a method that predicts the hidden ground truth exactly
// (diagnostic upper bound, not a paper baseline).
func NewOracle(s *Scenario) Method { return baselines.NewOracle(s) }

// Match solves the cluster–task matching problem for predicted matrices
// (T̂, Â), returning the cluster index assigned to each task. All methods
// in the paper share this pipeline: continuous relaxation (Algorithm 1
// family), rounding, and greedy feasibility repair. Mismatched matrix
// shapes panic; external callers that cannot guarantee shapes should use
// MatchChecked.
func Match(mc MatchConfig, T, A *Matrix) []int {
	assign, err := MatchChecked(mc, T, A)
	if err != nil {
		// invariant: the error surface of MatchChecked on same-shape
		// matrices is empty; this preserves Match's legacy panic contract
		// for mismatched inputs.
		panic(err)
	}
	return assign
}

// MatchChecked is Match with input validation: mismatched or empty
// matrices and bad hyperparameters return ErrBadShape / ErrBadConfig
// wrapped errors instead of panicking. When mc.TopK is set it runs the
// production-dimension sparse pipeline (screen → hierarchical cell solve →
// reconcile → repair) instead of the dense solver; with TopK ≥ clusters
// and one cell the two paths produce bit-identical relaxed solutions.
//
// With mc.TopK unset, instances whose dense pair count M·N exceeds
// core.SparseAutoThreshold (2^18) auto-route through the sparse pipeline
// at TopK = min(M, 32) — production dimensions should not pay for a dense
// iterate by default. Set TopK ≥ M explicitly to force the dense-
// equivalent sparse solve, or keep M·N at or under the threshold for the
// dense solver.
func MatchChecked(mc MatchConfig, T, A *Matrix) ([]int, error) {
	mc.FillDefaults()
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if _, err := mc.ProblemChecked(T, A); err != nil {
		return nil, err
	}
	if !mc.Sparse() {
		if k := core.AutoSparseTopK(T.Rows, T.Cols); k > 0 {
			mc.TopK = k
		}
	}
	if mc.Sparse() {
		_, res, err := mc.SolveSparseWS(T, A, nil, nil)
		if err != nil {
			return nil, err
		}
		return res.Assign, nil
	}
	return mc.Solve(T, A), nil
}

// Evaluate scores an assignment on a round of pool indices against the
// scenario's hidden ground truth, using the same-pipeline oracle of
// equation (6).
func Evaluate(s *Scenario, mc MatchConfig, round, assign []int) Eval {
	mc.FillDefaults()
	trueT, trueA := s.TrueMatrices(round)
	trueProb := mc.Problem(trueT, trueA)
	oracle := mc.Solve(trueT, trueA)
	return metrics.Evaluate(trueProb, assign, oracle)
}

// ExactMatch solves a small instance to optimality by branch and bound,
// returning the assignment, its cost, and reliability feasibility.
// Mismatched matrix shapes panic; see ExactMatchChecked.
func ExactMatch(mc MatchConfig, T, A *Matrix) (assign []int, cost float64, feasible bool) {
	assign, cost, feasible, err := ExactMatchChecked(mc, T, A)
	if err != nil {
		// invariant: preserves ExactMatch's legacy panic contract for
		// mismatched external inputs.
		panic(err)
	}
	return assign, cost, feasible
}

// ExactMatchChecked is ExactMatch with input validation, returning
// ErrBadShape / ErrBadConfig wrapped errors for invalid matrices or
// hyperparameters instead of panicking.
//
// Branch and bound is Ω(M^N); above core.SparseAutoThreshold dense pairs
// (where exhaustive search is hopeless anyway) the call auto-routes
// through the sparse relaxation pipeline instead and scores its
// assignment discretely — the same cost and feasibility semantics, an
// approximate rather than exact optimum.
func ExactMatchChecked(mc MatchConfig, T, A *Matrix) (assign []int, cost float64, feasible bool, err error) {
	mc.FillDefaults()
	if err := mc.Validate(); err != nil {
		return nil, 0, false, err
	}
	p, err := mc.ProblemChecked(T, A)
	if err != nil {
		return nil, 0, false, err
	}
	if !mc.Sparse() {
		if k := core.AutoSparseTopK(T.Rows, T.Cols); k > 0 {
			mc.TopK = k
			sp, res, err := mc.SolveSparseWS(T, A, nil, nil)
			if err != nil {
				return nil, 0, false, err
			}
			cost = sp.DiscreteCostSparse(res.Assign)
			rel := sp.DiscreteReliabilitySparse(res.Assign)
			return res.Assign, cost, rel >= mc.Gamma, nil
		}
	}
	assign, cost, feasible = matching.SolveExact(p)
	return assign, cost, feasible, nil
}

// Table1 regenerates the paper's ablation study (Table 1).
func Table1(cfg ExperimentConfig) *Table { return experiments.Ablation(cfg) }

// Figure4 regenerates the overall comparison (Fig. 4): one table per
// cluster setting.
func Figure4(cfg ExperimentConfig) []*Table { return experiments.Overall(cfg) }

// Figure5 regenerates the scalability study (Fig. 5): regret and
// utilization versus round size.
func Figure5(cfg ExperimentConfig, sizes []int) (regret, utilization *Table) {
	return experiments.Scaling(cfg, sizes)
}

// Table2 regenerates the parallel-execution comparison (Table 2).
func Table2(cfg ExperimentConfig) *Table { return experiments.ParallelExecution(cfg) }

// ExtensionTable runs one extension study by its DESIGN.md identifier:
// X1 (Theorem 1 smoothing check), X2 (Theorem 3 zeroth-order error),
// X3 (Theorems 4/5 solver convergence), X4 (barrier weight sweep),
// X5 (gradient-route comparison incl. unrolled differentiation),
// X6 (sample efficiency with paired significance), X7 (measurement-noise
// sensitivity), X8 (reliability-threshold sweep), X9 (adaptation under
// cluster performance drift with online refitting), X10 (matching solver
// comparison vs the exact branch-and-bound optimum), X11 (embedding
// front-end ablation).
// It returns nil for unknown keys.
func ExtensionTable(cfg ExperimentConfig, key string) *Table {
	switch key {
	case "X1":
		return experiments.SweepBeta(cfg)
	case "X2":
		return experiments.SweepPerturbation(cfg)
	case "X3":
		return experiments.Convergence(cfg)
	case "X4":
		return experiments.SweepBarrier(cfg)
	case "X5":
		return experiments.GradientRoutes(cfg)
	case "X6":
		return experiments.SampleEfficiency(cfg, nil)
	case "X7":
		return experiments.NoiseSensitivity(cfg, nil)
	case "X8":
		return experiments.GammaSweep(cfg, nil)
	case "X9":
		return experiments.AdaptationStudy(cfg)
	case "X10":
		return experiments.SolverStudy(cfg)
	case "X11":
		return experiments.EmbeddingStudy(cfg)
	default:
		return nil
	}
}

// ExtensionTables runs all extension studies, keyed by identifier.
func ExtensionTables(cfg ExperimentConfig) map[string]*Table {
	out := map[string]*Table{}
	for _, key := range []string{"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11"} {
		out[key] = ExtensionTable(cfg, key)
	}
	return out
}

// CompareMethods trains and evaluates the paper's five methods (§4.1.2)
// under cfg; includeAD=false drops MFCP-AD for non-convex settings.
func CompareMethods(cfg ExperimentConfig, includeAD bool) []MethodResult {
	return experiments.RunMethods(cfg, experiments.StandardSpecs(cfg, includeAD))
}

// RunPlatform executes an end-to-end exchange-platform simulation.
func RunPlatform(cfg PlatformConfig) (*PlatformReport, error) { return platform.Run(cfg) }

// RunPlatformCtx is RunPlatform with cooperative cancellation: the partial
// report (served prefix, Stopped = "canceled") returns alongside an
// ErrCanceled-wrapped error.
func RunPlatformCtx(ctx context.Context, cfg PlatformConfig) (*PlatformReport, error) {
	return platform.RunCtx(ctx, cfg)
}

// OnlineConfig parameterizes a platform simulation with in-the-loop
// predictor refitting; OnlineReport adds the learning curve.
type (
	OnlineConfig = platform.OnlineConfig
	OnlineReport = platform.OnlineReport
	// OnboardingPoint is one (budget, prediction quality) point from a
	// cluster-onboarding study.
	OnboardingPoint = platform.OnboardingPoint
	// ClusterProfile describes one cluster's hardware and operational
	// characteristics.
	ClusterProfile = cluster.Profile
)

// RunPlatformOnline simulates the platform with periodic predictor
// refitting from realized executions (partial feedback).
func RunPlatformOnline(cfg OnlineConfig) (*OnlineReport, error) { return platform.RunOnline(cfg) }

// RunPlatformOnlineCtx is RunPlatformOnline with cooperative cancellation
// and checkpoint/resume: set OnlineConfig.CheckpointPath to save resumable
// state periodically and on cancellation, and OnlineConfig.Resume (a loaded
// Checkpoint) to continue a previous run bit-identically.
func RunPlatformOnlineCtx(ctx context.Context, cfg OnlineConfig) (*OnlineReport, error) {
	return platform.RunOnlineCtx(ctx, cfg)
}

// OnboardingStudy profiles a newly joined cluster on growing task budgets
// and reports how quickly its predictors become matching-grade.
func OnboardingStudy(s *Scenario, newcomer *ClusterProfile, sampleSizes []int) ([]OnboardingPoint, error) {
	return platform.OnboardingStudy(s, newcomer, sampleSizes, nil, 0)
}

// ClusterInventory returns the full nine-profile cluster inventory the
// preset fleets draw from.
func ClusterInventory() []*ClusterProfile { return cluster.Inventory() }

// RegretChart renders a method comparison's regret means as an ASCII bar
// chart (a Fig. 4 panel).
func RegretChart(title string, results []MethodResult) string {
	return experiments.RegretChart(title, results)
}

// UtilizationChart renders utilization means as an ASCII bar chart.
func UtilizationChart(title string, results []MethodResult) string {
	return experiments.UtilizationChart(title, results)
}

// Figure5Charts computes Fig. 5 and renders it as two ASCII line charts.
func Figure5Charts(cfg ExperimentConfig, sizes []int) (regret, utilization string) {
	sz, results := experiments.ScalingResults(cfg, sizes)
	return experiments.ScalingCharts(sz, results)
}
