module mfcp

go 1.22
